(* Global abstract interpretation over the TIR CFG.

   Flow-sensitive per-function fixpoint computing, per program point, an
   interval + known-bits + address-base abstraction of every vreg.  The
   fixpoint results feed three consumers:

   - [Diag] findings (pass:"absint"): provably dead branches, always-
     trapping divisions, out-of-range shift counts, must-not-alias pairs;
   - [facts]: the [Opt.absfacts] closure record driving the global
     optimization passes (constant/branch folding, redundant-load and
     dead-store elimination);
   - the [absint] experiment / CLI, via [stats] and the query API.

   Interprocedural-lite: function parameters stay top (entry functions can
   be called with arbitrary arguments by the harness), while return-value
   summaries iterate downward from top for a bounded number of rounds —
   each round is sound because round k+1 is evaluated under round k's
   over-approximation, and round 0 (top) is trivially sound. *)

module Cfg = Trips_tir.Cfg
module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Opt = Trips_tir.Opt
module IM = Map.Make (Int)

(* ------------------------------------------------------------------ *)
(* The abstract value                                                  *)
(* ------------------------------------------------------------------ *)

type bset = Bnone | Bone of string | Bmany

type aval = {
  ik : bool;  (** definitely an integer (or address) value *)
  base : bset;  (** symbolic base the numeric part offsets from *)
  lo : int64;  (** signed inclusive lower bound of the numeric part *)
  hi : int64;
  kz : int64;  (** bit mask of bits known to be zero *)
  ko : int64;  (** bit mask of bits known to be one *)
}

let top_i = { ik = true; base = Bnone; lo = Int64.min_int; hi = Int64.max_int; kz = 0L; ko = 0L }
let top_any = { top_i with ik = false }
let of_base g = { top_i with base = Bone g; lo = 0L; hi = 0L }

(* Highest set bit position of a non-negative value, -1 for zero. *)
let msb (n : int64) =
  let rec go i = if i < 0 then -1 else if Int64.logand n (Int64.shift_left 1L i) <> 0L then i else go (i - 1) in
  go 62

(* Re-establish internal consistency: singleton ranges pin the bits, a
   known-zero sign bit pins the range, known-one bits raise the floor. *)
let norm (v : aval) : aval =
  if not v.ik then { top_any with ik = false }
  else begin
    let v =
      if v.lo = v.hi && v.base = Bnone then
        { v with kz = Int64.lognot v.lo; ko = v.lo }
      else v
    in
    (* bits above the magnitude of a non-negative range are zero *)
    let v =
      if v.base = Bnone && v.lo >= 0L && v.hi >= 0L then
        let m = msb v.hi in
        let high_zeros =
          if m >= 62 then 0L
          else Int64.shift_left (-1L) (m + 1)
        in
        { v with kz = Int64.logor v.kz high_zeros }
      else v
    in
    (* a known-zero sign bit bounds the range; known-one bits floor it *)
    let v =
      if v.base = Bnone && Int64.logand v.kz Int64.min_int <> 0L then
        let cap = Int64.lognot v.kz in
        { v with lo = max v.lo 0L; hi = min v.hi cap }
      else v
    in
    let v =
      if v.base = Bnone && v.ko >= 0L && v.ko <> 0L && v.lo >= 0L then
        { v with lo = max v.lo v.ko }
      else v
    in
    v
  end

let singleton n = norm { top_i with lo = n; hi = n }
let is_singleton v = v.ik && v.base = Bnone && v.lo = v.hi
let bounded lo hi = norm { top_i with lo; hi }

let join_base a b =
  match (a, b) with
  | Bnone, Bnone -> Bnone
  | Bone g, Bone h when g = h -> Bone g
  | _ -> Bmany

let join a b =
  norm
    {
      ik = a.ik && b.ik;
      base = join_base a.base b.base;
      lo = min a.lo b.lo;
      hi = max a.hi b.hi;
      kz = Int64.logand a.kz b.kz;
      ko = Int64.logand a.ko b.ko;
    }

(* Widening: any still-moving bound jumps to infinity so chains are finite;
   the bit masks already only shrink under join. *)
let widen (old : aval) (next : aval) =
  let j = join old next in
  norm
    {
      j with
      lo = (if j.lo < old.lo then Int64.min_int else old.lo);
      hi = (if j.hi > old.hi then Int64.max_int else old.hi);
    }

let leq a b =
  (b.ik <= a.ik)
  && (match (a.base, b.base) with
     | _, Bmany -> true
     | Bnone, Bnone -> true
     | Bone g, Bone h -> g = h
     | _ -> false)
  && a.lo >= b.lo && a.hi <= b.hi
  && Int64.logand a.kz b.kz = b.kz
  && Int64.logand a.ko b.ko = b.ko

let never_zero v =
  v.ik && v.base = Bnone && (v.lo > 0L || v.hi < 0L || v.ko <> 0L)

let always_zero v = v.ik && v.base = Bnone && v.lo = 0L && v.hi = 0L

(* ------------------------------------------------------------------ *)
(* Interval arithmetic helpers (overflow-checked)                      *)
(* ------------------------------------------------------------------ *)

let add_ovf a b =
  let s = Int64.add a b in
  if (a >= 0L) = (b >= 0L) && (s >= 0L) <> (a >= 0L) then None else Some s

let sub_ovf a b =
  let s = Int64.sub a b in
  if (a >= 0L) <> (b >= 0L) && (s >= 0L) <> (a >= 0L) then None else Some s

let mul_ovf a b =
  if a = 0L || b = 0L then Some 0L
  else
    let p = Int64.mul a b in
    if Int64.div p b = a && not (a = -1L && b = Int64.min_int) && not (b = -1L && a = Int64.min_int)
    then Some p
    else None

(* ------------------------------------------------------------------ *)
(* Seeded breakage for the mutation test suite                          *)
(* ------------------------------------------------------------------ *)

(* Each bug mode corrupts one transfer function / oracle so the test suite
   can demonstrate that a broken analysis is caught by a known-answer
   diagnostic or by the validator's independent re-derivation. *)
type bug =
  | Bug_and_mask  (** [x & m] claims [0, m-1] instead of [0, m] *)
  | Bug_refine_flip  (** branch refinement applies the wrong polarity *)
  | Bug_sep_overlap  (** same-base overlapping ranges claimed disjoint *)
  | Bug_add_wrap  (** addition ignores signed overflow *)
  | Bug_cmp_flip  (** [<] decides with the operands swapped *)

let bug_of_int = function
  | 1 -> Some Bug_and_mask
  | 2 -> Some Bug_refine_flip
  | 3 -> Some Bug_sep_overlap
  | 4 -> Some Bug_add_wrap
  | 5 -> Some Bug_cmp_flip
  | _ -> None

let num_bugs = 5

(* ------------------------------------------------------------------ *)
(* Transfer functions                                                  *)
(* ------------------------------------------------------------------ *)

type tctx = { bug : bug option }

let t_add (ctx : tctx) a b =
  if not (a.ik && b.ik) then top_any
  else
    let base =
      match (a.base, b.base) with
      | Bnone, Bnone -> Bnone
      | Bone g, Bnone | Bnone, Bone g -> Bone g
      | _ -> Bmany
    in
    match (add_ovf a.lo b.lo, add_ovf a.hi b.hi) with
    | Some lo, Some hi -> norm { top_i with base; lo; hi }
    | _ when ctx.bug = Some Bug_add_wrap ->
      norm { top_i with base; lo = Int64.add a.lo b.lo; hi = Int64.add a.hi b.hi }
    | _ -> norm { top_i with base }

let t_sub _ctx a b =
  if not (a.ik && b.ik) then top_any
  else
    let base =
      match (a.base, b.base) with
      | x, Bnone -> x
      | Bone g, Bone h when g = h -> Bnone
      | _ -> Bmany
    in
    match (sub_ovf a.lo b.hi, sub_ovf a.hi b.lo) with
    | Some lo, Some hi -> norm { top_i with base; lo; hi }
    | _ -> norm { top_i with base }

let t_mul _ctx a b =
  if not (a.ik && b.ik && a.base = Bnone && b.base = Bnone) then top_any
  else
    let cands =
      [ mul_ovf a.lo b.lo; mul_ovf a.lo b.hi; mul_ovf a.hi b.lo; mul_ovf a.hi b.hi ]
    in
    if List.exists (fun c -> c = None) cands then top_i
    else
      let vs = List.filter_map Fun.id cands in
      bounded (List.fold_left min Int64.max_int vs) (List.fold_left max Int64.min_int vs)

let t_and (ctx : tctx) a b =
  if not (a.ik && b.ik && a.base = Bnone && b.base = Bnone) then top_any
  else
    let v =
      norm
        {
          top_i with
          kz = Int64.logor a.kz b.kz;
          ko = Int64.logand a.ko b.ko;
        }
    in
    (* [x & m] with a non-negative singleton mask: tight range *)
    let cap m v =
      if m >= 0L then
        let hi = if ctx.bug = Some Bug_and_mask && m > 0L then Int64.sub m 1L else m in
        norm { v with lo = max v.lo 0L; hi = min v.hi hi }
      else v
    in
    let v = if is_singleton b then cap b.lo v else v in
    let v = if is_singleton a then cap a.lo v else v in
    v

let t_or _ctx a b =
  if not (a.ik && b.ik && a.base = Bnone && b.base = Bnone) then top_any
  else
    let v =
      norm
        {
          top_i with
          kz = Int64.logand a.kz b.kz;
          ko = Int64.logor a.ko b.ko;
        }
    in
    if a.lo >= 0L && b.lo >= 0L then norm { v with lo = max a.lo b.lo } else v

let t_xor _ctx a b =
  if not (a.ik && b.ik && a.base = Bnone && b.base = Bnone) then top_any
  else
    norm
      {
        top_i with
        kz = Int64.logor (Int64.logand a.kz b.kz) (Int64.logand a.ko b.ko);
        ko = Int64.logor (Int64.logand a.kz b.ko) (Int64.logand a.ko b.kz);
      }

let low_ones n = if n <= 0 then 0L else if n >= 64 then -1L else Int64.sub (Int64.shift_left 1L n) 1L

let t_shl _ctx a b =
  if not (a.ik && b.ik && a.base = Bnone) then top_any
  else if is_singleton b && b.lo >= 0L && b.lo < 64L then begin
    let s = Int64.to_int b.lo in
    let kz = Int64.logor (Int64.shift_left a.kz s) (low_ones s) in
    let ko = Int64.shift_left a.ko s in
    match (mul_ovf a.lo (Int64.shift_left 1L s), mul_ovf a.hi (Int64.shift_left 1L s)) with
    | Some lo, Some hi -> norm { top_i with lo; hi; kz; ko }
    | _ -> norm { top_i with kz; ko }
  end
  else top_i

let t_lsr _ctx a b =
  if not (a.ik && b.ik && a.base = Bnone) then top_any
  else if is_singleton b && b.lo > 0L && b.lo < 64L then begin
    let s = Int64.to_int b.lo in
    let kz =
      Int64.logor
        (Int64.shift_right_logical a.kz s)
        (Int64.lognot (Int64.shift_right_logical (-1L) s))
    in
    let ko = Int64.shift_right_logical a.ko s in
    let hi =
      if a.lo >= 0L then Int64.shift_right_logical a.hi s
      else Int64.shift_right_logical (-1L) s
    in
    norm { top_i with lo = 0L; hi; kz; ko }
  end
  else if is_singleton b && b.lo = 0L then a
  else top_i

let t_asr _ctx a b =
  if not (a.ik && b.ik && a.base = Bnone) then top_any
  else if is_singleton b && b.lo >= 0L && b.lo < 64L then begin
    let s = Int64.to_int b.lo in
    bounded (Int64.shift_right a.lo s) (Int64.shift_right a.hi s)
  end
  else top_i

let t_div _ctx a b =
  if not (a.ik && b.ik && a.base = Bnone && b.base = Bnone) then top_any
  else if a.lo >= 0L && b.lo > 0L then bounded 0L a.hi
  else top_i

let t_rem _ctx a b =
  if not (a.ik && b.ik && a.base = Bnone && b.base = Bnone) then top_any
  else if a.lo >= 0L && b.lo > 0L then bounded 0L (min a.hi (Int64.sub b.hi 1L))
  else top_i

let bool_range = norm { top_i with lo = 0L; hi = 1L }

(* Decide an integer comparison from the operand ranges, if possible. *)
let rec cmp_decide (ctx : tctx) (op : Ast.binop) a b : bool option =
  if not (a.ik && b.ik) then None
  else if a.base <> Bnone || b.base <> Bnone then
    (* identical singleton bases compare by offset; otherwise unknown *)
    match (a.base, b.base) with
    | Bone g, Bone h when g = h && op = Ast.Eq ->
      if a.lo = a.hi && b.lo = b.hi && a.lo = b.lo then Some true
      else if a.hi < b.lo || b.hi < a.lo then Some false
      else None
    | Bone g, Bone h when g = h && op = Ast.Ne ->
      if a.lo = a.hi && b.lo = b.hi && a.lo = b.lo then Some false
      else if a.hi < b.lo || b.hi < a.lo then Some true
      else None
    | _ -> None
  else
    let a, b = if ctx.bug = Some Bug_cmp_flip && op = Ast.Lt then (b, a) else (a, b) in
    match op with
    | Ast.Eq ->
      if a.lo = a.hi && b.lo = b.hi && a.lo = b.lo then Some true
      else if a.hi < b.lo || b.hi < a.lo then Some false
      else if Int64.logand a.ko b.kz <> 0L || Int64.logand a.kz b.ko <> 0L then Some false
      else None
    | Ast.Ne -> (
      match cmp_decide { bug = None } Ast.Eq a b with
      | Some r -> Some (not r)
      | None -> None)
    | Ast.Lt ->
      if a.hi < b.lo then Some true else if a.lo >= b.hi then Some false else None
    | Ast.Le ->
      if a.hi <= b.lo then Some true else if a.lo > b.hi then Some false else None
    | Ast.Gt ->
      if a.lo > b.hi then Some true else if a.hi <= b.lo then Some false else None
    | Ast.Ge ->
      if a.lo >= b.hi then Some true else if a.hi < b.lo then Some false else None
    | Ast.Ult ->
      if a.lo >= 0L && b.lo >= 0L then
        if a.hi < b.lo then Some true else if a.lo >= b.hi then Some false else None
      else None
    | Ast.Ule ->
      if a.lo >= 0L && b.lo >= 0L then
        if a.hi <= b.lo then Some true else if a.lo > b.hi then Some false else None
      else None
    | _ -> None

let t_cmp ctx op a b =
  match cmp_decide ctx op a b with
  | Some true -> singleton 1L
  | Some false -> singleton 0L
  | None -> bool_range

let width_bits w = 8 * Ty.bytes_of_width w

let t_sext _ctx w a =
  let bits = width_bits w in
  if bits >= 64 then (if a.ik && a.base = Bnone then a else top_any)
  else
    let half = Int64.shift_left 1L (bits - 1) in
    let lo = Int64.neg half and hi = Int64.sub half 1L in
    if a.ik && a.base = Bnone && a.lo >= lo && a.hi <= hi then a else bounded lo hi

let t_zext _ctx w a =
  let bits = width_bits w in
  if bits >= 64 then (if a.ik && a.base = Bnone then a else top_any)
  else
    let hi = Int64.sub (Int64.shift_left 1L bits) 1L in
    if a.ik && a.base = Bnone && a.lo >= 0L && a.hi <= hi then a else bounded 0L hi

let t_neg _ctx a =
  if not (a.ik && a.base = Bnone) then top_any
  else if a.lo = Int64.min_int then top_i
  else bounded (Int64.neg a.hi) (Int64.neg a.lo)

let t_not _ctx a =
  if not (a.ik && a.base = Bnone) then top_any
  else
    norm
      {
        top_i with
        lo = Int64.lognot a.hi;
        hi = Int64.lognot a.lo;
        kz = a.ko;
        ko = a.kz;
      }

let t_binop ctx (op : Ast.binop) a b : aval =
  match op with
  | Ast.Add -> t_add ctx a b
  | Ast.Sub -> t_sub ctx a b
  | Ast.Mul -> t_mul ctx a b
  | Ast.Div -> t_div ctx a b
  | Ast.Rem -> t_rem ctx a b
  | Ast.And -> t_and ctx a b
  | Ast.Or -> t_or ctx a b
  | Ast.Xor -> t_xor ctx a b
  | Ast.Shl -> t_shl ctx a b
  | Ast.Lsr -> t_lsr ctx a b
  | Ast.Asr -> t_asr ctx a b
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Ult | Ast.Ule ->
    t_cmp ctx op a b
  | Ast.Feq | Ast.Fne | Ast.Flt | Ast.Fle | Ast.Fgt | Ast.Fge -> bool_range
  | Ast.Fadd | Ast.Fsub | Ast.Fmul | Ast.Fdiv -> top_any

let t_unop ctx (op : Ast.unop) a : aval =
  match op with
  | Ast.Neg -> t_neg ctx a
  | Ast.Not -> t_not ctx a
  | Ast.Sext w -> t_sext ctx w a
  | Ast.Zext w -> t_zext ctx w a
  | Ast.Ftoi -> top_i
  | Ast.Itof | Ast.Fneg -> top_any

let t_load (ty : Ty.t) (w : Ty.width) : aval =
  match ty with
  | Ty.F64 -> top_any
  | Ty.I64 ->
    (* sub-word integer loads zero-extend (Image.load) *)
    if w = Ty.W8 then top_i else bounded 0L (low_ones (width_bits w))

(* ------------------------------------------------------------------ *)
(* Environments and the per-function fixpoint                          *)
(* ------------------------------------------------------------------ *)

type env = aval IM.t

let lookup env v = match IM.find_opt v env with Some x -> x | None -> top_any

let eval_operand env (o : Cfg.operand) : aval =
  match o with
  | Cfg.Reg r -> lookup env r
  | Cfg.Ci n -> singleton n
  | Cfg.Cf _ -> top_any
  | Cfg.Sym g -> of_base g

let env_join a b = IM.union (fun _ x y -> Some (join x y)) a b
let env_widen old next = IM.union (fun _ x y -> Some (widen x y)) old next

let env_leq a b =
  (* a <= b iff every binding of b over-approximates a's; vregs absent from
     b are top there, so only b's bindings need checking *)
  IM.for_all (fun v bv -> leq (lookup a v) bv) b

(* Per-vreg compare provenance for branch refinement: which comparison a
   vreg was last defined by, invalidated when any mentioned reg changes. *)
type cmps = (Ast.binop * Cfg.operand * Cfg.operand) IM.t

let cmps_kill (c : cmps) (d : Cfg.vreg) : cmps =
  IM.filter
    (fun dest (_, a, b) -> dest <> d && a <> Cfg.Reg d && b <> Cfg.Reg d)
    c

(* Block-local copy equalities, vreg -> canonical representative.  Branch
   refinement narrows a compare's operands; without this, a [Mov] copy of
   the compared value (which Lower emits for every source-level variable)
   would keep its unrefined range. *)
type eqs = Cfg.vreg IM.t

let eq_canon (e : eqs) x = match IM.find_opt x e with Some c -> c | None -> x

(* Everybody provably equal to [x]: its canon plus all other members. *)
let eq_class (e : eqs) x =
  let c = eq_canon e x in
  let rest =
    IM.fold (fun y cy acc -> if cy = c && y <> x then y :: acc else acc) e []
  in
  if c = x then x :: rest else x :: c :: rest

let eqs_kill (e : eqs) (d : Cfg.vreg) : eqs =
  IM.filter (fun y c -> y <> d && c <> d) e

type summaries = (string, aval) Hashtbl.t

(* One instruction: new env, new cmp/eq maps, and the def's value if any. *)
let transfer ctx (summ : summaries) env ((cm : cmps), (eq : eqs)) (ins : Cfg.ins)
    : env * (cmps * eqs) * (Cfg.vreg * aval) option =
  let def ?copy_of d v cm_update =
    let cm = cmps_kill cm d in
    let cm = cm_update cm in
    let eq = eqs_kill eq d in
    let eq =
      match copy_of with
      | Some s when s <> d -> IM.add d (eq_canon eq s) eq
      | _ -> eq
    in
    (IM.add d (norm v) env, (cm, eq), Some (d, norm v))
  in
  match ins with
  | Cfg.Bin (op, d, a, b) ->
    let va = eval_operand env a and vb = eval_operand env b in
    let v = t_binop ctx op va vb in
    let is_icmp =
      match op with
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Ult | Ast.Ule ->
        true
      | _ -> false
    in
    (* don't record a compare whose operands mention the destination: the
       recorded entry would refer to the post-assignment value *)
    def d v (fun cm ->
        if is_icmp && a <> Cfg.Reg d && b <> Cfg.Reg d then IM.add d (op, a, b) cm
        else cm)
  | Cfg.Un (op, d, a) -> def d (t_unop ctx op (eval_operand env a)) (fun cm -> cm)
  | Cfg.Mov (d, src) ->
    let v = eval_operand env src in
    let copy_of = match src with Cfg.Reg s -> Some s | _ -> None in
    def ?copy_of d v (fun cm ->
        match src with
        | Cfg.Reg s -> (
          match IM.find_opt s cm with Some c -> IM.add d c cm | None -> cm)
        | _ -> cm)
  | Cfg.Load (ty, w, d, _, _) -> def d (t_load ty w) (fun cm -> cm)
  | Cfg.Store _ -> (env, (cm, eq), None)
  | Cfg.Call (Some d, f, _) ->
    let v = match Hashtbl.find_opt summ f with Some s -> s | None -> top_any in
    def d v (fun cm -> cm)
  | Cfg.Call (None, _, _) -> (env, (cm, eq), None)

(* Meet a vreg's entry with a refined range; None when contradictory. *)
let meet_range env x ~lo ~hi : env option =
  let v = lookup env x in
  if not (v.ik && v.base = Bnone) then Some env
  else
    let lo = max v.lo lo and hi = min v.hi hi in
    if lo > hi then None
    else Some (IM.add x (norm { v with lo; hi }) env)

(* Refine [env] along the [pol] edge of a branch on [c].  [cm] supplies the
   defining comparison of condition vregs; [eq] extends every narrowing to
   the refined register's whole copy class. *)
let refine (ctx : tctx) (cm : cmps) (eq : eqs) env (c : Cfg.operand) (pol : bool)
    : env option =
  let pol = if ctx.bug = Some Bug_refine_flip then not pol else pol in
  (* shadow the single-register meet with one that narrows every copy *)
  let meet_range env x ~lo ~hi =
    List.fold_left
      (fun acc y ->
        match acc with None -> None | Some e -> meet_range e y ~lo ~hi)
      (Some env) (eq_class eq x)
  in
  let refine_cond env =
    match c with
    | Cfg.Reg x ->
      let v = lookup env x in
      if not (v.ik && v.base = Bnone) then Some env
      else if pol then
        if always_zero v then None
        else if v.lo = 0L && v.hi > 0L then meet_range env x ~lo:1L ~hi:v.hi
        else Some env
      else if never_zero v then None
      else meet_range env x ~lo:0L ~hi:0L
    | _ -> Some env
  in
  let refine_cmp env =
    match c with
    | Cfg.Reg x -> (
      match IM.find_opt x cm with
      | None -> Some env
      | Some (op, a, b) -> (
        let va = eval_operand env a and vb = eval_operand env b in
        if not (va.ik && vb.ik && va.base = Bnone && vb.base = Bnone) then Some env
        else
          (* constraint: [a OP b] == pol *)
          let bind side env f =
            match side with
            | Cfg.Reg r -> (
              match f r with Some e -> Some e | None -> None)
            | _ -> Some env
          in
          let ( >>= ) o f = match o with Some e -> f e | None -> None in
          let app_left env =
            bind a env (fun x ->
                match (op, pol) with
                | Ast.Lt, true ->
                  meet_range env x ~lo:Int64.min_int ~hi:(Int64.sub vb.hi 1L)
                | Ast.Lt, false -> meet_range env x ~lo:vb.lo ~hi:Int64.max_int
                | Ast.Le, true -> meet_range env x ~lo:Int64.min_int ~hi:vb.hi
                | Ast.Le, false ->
                  meet_range env x ~lo:(Int64.add vb.lo 1L) ~hi:Int64.max_int
                | Ast.Gt, true ->
                  meet_range env x ~lo:(Int64.add vb.lo 1L) ~hi:Int64.max_int
                | Ast.Gt, false -> meet_range env x ~lo:Int64.min_int ~hi:vb.hi
                | Ast.Ge, true -> meet_range env x ~lo:vb.lo ~hi:Int64.max_int
                | Ast.Ge, false ->
                  meet_range env x ~lo:Int64.min_int ~hi:(Int64.sub vb.hi 1L)
                | Ast.Eq, true -> meet_range env x ~lo:vb.lo ~hi:vb.hi
                | Ast.Eq, false | Ast.Ne, true ->
                  if vb.lo = vb.hi then
                    let v = lookup env x in
                    if v.lo = vb.lo && v.hi = vb.lo then None
                    else if v.lo = vb.lo then
                      meet_range env x ~lo:(Int64.add vb.lo 1L) ~hi:Int64.max_int
                    else if v.hi = vb.lo then
                      meet_range env x ~lo:Int64.min_int ~hi:(Int64.sub vb.lo 1L)
                    else Some env
                  else Some env
                | Ast.Ne, false -> meet_range env x ~lo:vb.lo ~hi:vb.hi
                | Ast.Ult, true ->
                  if vb.lo >= 0L then
                    meet_range env x ~lo:0L ~hi:(Int64.sub vb.hi 1L)
                  else Some env
                | Ast.Ule, true ->
                  if vb.lo >= 0L then meet_range env x ~lo:0L ~hi:vb.hi
                  else Some env
                | Ast.Ult, false ->
                  let v = lookup env x in
                  if v.lo >= 0L && vb.lo >= 0L then
                    meet_range env x ~lo:vb.lo ~hi:Int64.max_int
                  else Some env
                | Ast.Ule, false ->
                  let v = lookup env x in
                  if v.lo >= 0L && vb.lo >= 0L then
                    meet_range env x ~lo:(Int64.add vb.lo 1L) ~hi:Int64.max_int
                  else Some env
                | _ -> Some env)
          in
          let app_right env =
            bind b env (fun y ->
                match (op, pol) with
                | Ast.Lt, true ->
                  meet_range env y ~lo:(Int64.add va.lo 1L) ~hi:Int64.max_int
                | Ast.Lt, false -> meet_range env y ~lo:Int64.min_int ~hi:va.hi
                | Ast.Le, true -> meet_range env y ~lo:va.lo ~hi:Int64.max_int
                | Ast.Le, false ->
                  meet_range env y ~lo:Int64.min_int ~hi:(Int64.sub va.hi 1L)
                | Ast.Gt, true ->
                  meet_range env y ~lo:Int64.min_int ~hi:(Int64.sub va.hi 1L)
                | Ast.Gt, false -> meet_range env y ~lo:va.lo ~hi:Int64.max_int
                | Ast.Ge, true -> meet_range env y ~lo:Int64.min_int ~hi:va.hi
                | Ast.Ge, false ->
                  meet_range env y ~lo:(Int64.add va.lo 1L) ~hi:Int64.max_int
                | Ast.Eq, true -> meet_range env y ~lo:va.lo ~hi:va.hi
                | _ -> Some env)
          in
          app_left env >>= app_right))
    | _ -> Some env
  in
  match refine_cond env with
  | None -> None
  | Some env -> refine_cmp env

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type fres = {
  f_entry : (string, env) Hashtbl.t;  (* reachable blocks only *)
  f_defs : (string * int, aval) Hashtbl.t;  (* per-ins def values *)
  f_branch : (string, bool) Hashtbl.t;  (* provable branch directions *)
  f_joined : aval IM.t;  (* flow-insensitive per-vreg join *)
  f_widens : int;
}

type stats = {
  s_funcs : int;
  s_blocks : int;
  s_reachable : int;
  s_const_defs : int;
  s_dead_branches : int;
  s_trap_divs : int;
  s_oor_shifts : int;
  s_sep_pairs : int;
  s_widenings : int;
}

type t = {
  prog : Cfg.program;
  fres : (string, fres) Hashtbl.t;
  sizes : (string * int) list;
  bug : bug option;
}

let widen_threshold = 3
let max_sweeps = 200
let summary_rounds = 3

let analyze_func ctx (summ : summaries) (f : Cfg.func) : fres * aval =
  let blocks = Array.of_list f.blocks in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i (b : Cfg.block) -> Hashtbl.replace index b.Cfg.label i) blocks;
  let entry_env : env option array = Array.make (Array.length blocks) None in
  let join_count = Array.make (Array.length blocks) 0 in
  let widens = ref 0 in
  (* parameters stay top: entry functions can be called with anything *)
  let init =
    List.fold_left
      (fun e (v, ty) ->
        IM.add v (match ty with Ty.I64 -> top_i | Ty.F64 -> top_any) e)
      IM.empty f.params
  in
  if Array.length blocks > 0 then entry_env.(0) <- Some init;
  let dirty = Array.make (Array.length blocks) true in
  let ret_acc = ref None in
  let sweep () =
    let changed = ref false in
    Array.iteri
      (fun bi (b : Cfg.block) ->
        match entry_env.(bi) with
        | None -> ()
        | Some env0 when dirty.(bi) ->
          dirty.(bi) <- false;
          let env, (cm, eq) =
            List.fold_left
              (fun (env, maps) ins ->
                let env, maps, _ = transfer ctx summ env maps ins in
                (env, maps))
              (env0, (IM.empty, IM.empty))
              b.Cfg.ins
          in
          let push label env' =
            match Hashtbl.find_opt index label with
            | None -> ()
            | Some si -> (
              match entry_env.(si) with
              | None ->
                entry_env.(si) <- Some env';
                dirty.(si) <- true;
                changed := true
              | Some old ->
                if not (env_leq env' old) then begin
                  join_count.(si) <- join_count.(si) + 1;
                  let merged =
                    if join_count.(si) > widen_threshold then begin
                      incr widens;
                      env_widen old env'
                    end
                    else env_join old env'
                  in
                  if not (env_leq merged old && env_leq old merged) then begin
                    entry_env.(si) <- Some merged;
                    dirty.(si) <- true;
                    changed := true
                  end
                end)
          in
          (match b.Cfg.term with
          | Cfg.Jmp l -> push l env
          | Cfg.Br (c, l1, l2) ->
            (match refine ctx cm eq env c true with
            | Some e -> push l1 e
            | None -> ());
            (match refine ctx cm eq env c false with
            | Some e -> push l2 e
            | None -> ())
          | Cfg.Ret ro ->
            let rv =
              match ro with Some o -> eval_operand env o | None -> top_any
            in
            ret_acc :=
              Some (match !ret_acc with None -> rv | Some acc -> join acc rv))
        | Some _ -> ())
      blocks;
    !changed
  in
  let sweeps = ref 0 in
  while sweep () && !sweeps < max_sweeps do
    incr sweeps;
    if !sweeps >= max_sweeps then begin
      (* safety valve: drop to all-top so the final pass stays sound *)
      Array.iteri
        (fun i e -> if e <> None then entry_env.(i) <- Some IM.empty)
        entry_env;
      ret_acc := Some top_any
    end
  done;
  (* final recording pass over the stabilized entry environments *)
  let f_entry = Hashtbl.create 16 in
  let f_defs = Hashtbl.create 64 in
  let f_branch = Hashtbl.create 8 in
  let f_joined = ref IM.empty in
  let note_join d v =
    f_joined :=
      IM.update d
        (function None -> Some v | Some o -> Some (join o v))
        !f_joined
  in
  Array.iteri
    (fun bi (b : Cfg.block) ->
      match entry_env.(bi) with
      | None -> ()
      | Some env0 ->
        Hashtbl.replace f_entry b.Cfg.label env0;
        let env, (cm, eq) =
          List.fold_left
            (fun ((env, maps), i) ins ->
              let env, maps, dv = transfer ctx summ env maps ins in
              (match dv with
              | Some (d, v) ->
                Hashtbl.replace f_defs (b.Cfg.label, i) v;
                note_join d v
              | None -> ());
              ((env, maps), i + 1))
            ((env0, (IM.empty, IM.empty)), 0)
            b.Cfg.ins
          |> fst
        in
        (match b.Cfg.term with
        | Cfg.Br (c, _, _) -> (
          let cv = eval_operand env c in
          if never_zero cv then Hashtbl.replace f_branch b.Cfg.label true
          else if always_zero cv then Hashtbl.replace f_branch b.Cfg.label false
          else
            (* refinement contradiction on one edge also decides the branch *)
            match
              (refine ctx cm eq env c true, refine ctx cm eq env c false)
            with
            | Some _, None -> Hashtbl.replace f_branch b.Cfg.label true
            | None, Some _ -> Hashtbl.replace f_branch b.Cfg.label false
            | _ -> ())
        | _ -> ()))
    blocks;
  let ret = match !ret_acc with Some v -> v | None -> top_any in
  ({ f_entry; f_defs; f_branch; f_joined = !f_joined; f_widens = !widens }, ret)

let analyze ?bug (p : Cfg.program) : t =
  let bug = Option.bind bug bug_of_int in
  let ctx = { bug } in
  let summ : summaries = Hashtbl.create 8 in
  (* downward summary iteration: round 0 = top, each round sound *)
  let last = Hashtbl.create 8 in
  for _round = 1 to summary_rounds do
    Hashtbl.reset last;
    List.iter
      (fun (f : Cfg.func) ->
        let _, ret = analyze_func ctx summ f in
        Hashtbl.replace last f.Cfg.name ret)
      p.Cfg.funcs;
    Hashtbl.reset summ;
    Hashtbl.iter (fun k v -> Hashtbl.replace summ k v) last
  done;
  let fres = Hashtbl.create 8 in
  List.iter
    (fun (f : Cfg.func) ->
      let r, _ = analyze_func ctx summ f in
      Hashtbl.replace fres f.Cfg.name r)
    p.Cfg.funcs;
  {
    prog = p;
    fres;
    sizes = List.map (fun (g : Ast.global) -> (g.Ast.gname, g.Ast.size)) p.Cfg.globals;
    bug;
  }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let func_res t fname = Hashtbl.find_opt t.fres fname

let entry_env t ~fname ~label =
  match func_res t fname with
  | None -> None
  | Some r -> Hashtbl.find_opt r.f_entry label

let range_at t ~fname ~label v =
  match entry_env t ~fname ~label with
  | None -> None
  | Some env ->
    let a = lookup env v in
    if a.ik && a.base = Bnone then Some (a.lo, a.hi) else None

let def_value t ~fname ~label idx =
  match func_res t fname with
  | None -> None
  | Some r -> (
    match Hashtbl.find_opt r.f_defs (label, idx) with
    | Some a when a.ik && a.base = Bnone -> Some (a.lo, a.hi)
    | _ -> None)

let branch_dir t ~fname ~label =
  Option.bind (func_res t fname) (fun r -> Hashtbl.find_opt r.f_branch label)

let reachable t ~fname ~label =
  match func_res t fname with
  | None -> false
  | Some r -> Hashtbl.mem r.f_entry label

(* ------------------------------------------------------------------ *)
(* The separation oracle and Opt facts                                 *)
(* ------------------------------------------------------------------ *)

(* Resolve an access (root operand, byte offset, width) into an absolute or
   base-relative byte range. *)
let resolve_access t (r : fres) (o : Cfg.operand) off w :
    (bset * int64 * int64) option =
  let v =
    match o with
    | Cfg.Sym g -> of_base g
    | Cfg.Ci n -> singleton n
    | Cfg.Cf _ -> top_any
    | Cfg.Reg x -> ( match IM.find_opt x r.f_joined with Some a -> a | None -> top_any)
  in
  if not v.ik then None
  else
    let off = Int64.of_int off and bytes = Int64.of_int (Ty.bytes_of_width w) in
    match (add_ovf v.lo off, add_ovf v.hi off) with
    | Some lo, Some hi -> (
      match add_ovf hi bytes with
      | Some hi_end -> Some (v.base, lo, hi_end)  (* [lo, hi_end) *)
      | None -> None)
    | _ ->
      ignore t;
      None

let in_bounds t base lo hi_end =
  match base with
  | Bone g -> (
    match List.assoc_opt g t.sizes with
    | Some size -> lo >= 0L && hi_end <= Int64.of_int size
    | None -> false)
  | _ -> false

let sep t (r : fres) (o1, off1, w1) (o2, off2, w2) : bool =
  match (resolve_access t r o1 off1 w1, resolve_access t r o2 off2 w2) with
  | Some (b1, lo1, he1), Some (b2, lo2, he2) -> (
    match (b1, b2) with
    | Bone g1, Bone g2 when g1 <> g2 ->
      (* distinct globals are laid out disjointly; in-bounds accesses to
         different globals can never overlap *)
      in_bounds t b1 lo1 he1 && in_bounds t b2 lo2 he2
    | Bone g1, Bone g2 when g1 = g2 ->
      if t.bug = Some Bug_sep_overlap then true
      else
        in_bounds t b1 lo1 he1 && in_bounds t b2 lo2 he2
        && (he1 <= lo2 || he2 <= lo1)
    | Bnone, Bnone -> he1 <= lo2 || he2 <= lo1
    | _ -> false)
  | _ -> false

let separated t ~fname a b =
  match func_res t fname with None -> false | Some r -> sep t r a b

let facts t fname : Opt.absfacts =
  match func_res t fname with
  | None -> Opt.no_facts
  | Some r ->
    {
      Opt.af_const =
        (fun label idx ->
          match Hashtbl.find_opt r.f_defs (label, idx) with
          | Some v when is_singleton v -> Some (Cfg.Ci v.lo)
          | _ -> None);
      af_branch = (fun label -> Hashtbl.find_opt r.f_branch label);
      af_sep = (fun a b -> sep t r a b);
    }

(* ------------------------------------------------------------------ *)
(* Findings and stats                                                  *)
(* ------------------------------------------------------------------ *)

let func_memops (f : Cfg.func) : (Cfg.operand * int * Ty.width) list =
  List.concat_map
    (fun (b : Cfg.block) ->
      List.filter_map
        (function
          | Cfg.Load (_, w, _, a, off) -> Some (a, off, w)
          | Cfg.Store (w, a, off, _) -> Some (a, off, w)
          | _ -> None)
        b.Cfg.ins)
    f.Cfg.blocks

let sep_pair_count t (f : Cfg.func) =
  match func_res t f.Cfg.name with
  | None -> 0
  | Some r ->
    let ops = Array.of_list (func_memops f) in
    let n = ref 0 in
    Array.iteri
      (fun i a ->
        Array.iteri (fun j b -> if j > i && sep t r a b then incr n) ops)
      ops;
    !n

let func_diags t (f : Cfg.func) : Diag.t list =
  match func_res t f.Cfg.name with
  | None -> []
  | Some r ->
    let ds = ref [] in
    let add ?sev ?inst ~block cls msg =
      ds := Diag.make ?sev ?inst ~pass:"absint" ~fname:f.Cfg.name ~block cls msg :: !ds
    in
    let joined_of = function
      | Cfg.Ci n -> singleton n
      | Cfg.Reg x -> (
        match IM.find_opt x r.f_joined with Some a -> a | None -> top_any)
      | _ -> top_any
    in
    List.iter
      (fun (b : Cfg.block) ->
        if Hashtbl.mem r.f_entry b.Cfg.label then begin
          List.iteri
            (fun i ins ->
              match ins with
              | Cfg.Bin ((Ast.Div | Ast.Rem), _, _, divisor) ->
                (* the flow-insensitive join is zero only if every definition
                   of the divisor is zero, so "always traps" is sound *)
                if always_zero (joined_of divisor) then
                  add ~sev:Diag.Warning ~inst:i ~block:b.Cfg.label "trap-div"
                    "division by a provably-zero divisor always traps"
              | Cfg.Bin ((Ast.Shl | Ast.Lsr | Ast.Asr), _, _, count) ->
                let cv = joined_of count in
                if cv.ik && cv.base = Bnone && (cv.hi < 0L || cv.lo > 63L) then
                  add ~sev:Diag.Warning ~inst:i ~block:b.Cfg.label "shift-range"
                    "shift count is provably outside 0..63"
              | _ -> ())
            b.Cfg.ins;
          match Hashtbl.find_opt r.f_branch b.Cfg.label with
          | Some dir ->
            add ~sev:Diag.Info ~block:b.Cfg.label "dead-branch"
              (Printf.sprintf "branch provably always goes to the %s side"
                 (if dir then "then" else "else"))
          | None -> ()
        end)
      f.Cfg.blocks;
    let pairs = sep_pair_count t f in
    if pairs > 0 then
      add ~sev:Diag.Info ~block:"" "alias-pairs"
        (Printf.sprintf "%d memory access pairs proved must-not-alias" pairs);
    List.rev !ds

let diags t : Diag.t list =
  List.concat_map (fun f -> func_diags t f) t.prog.Cfg.funcs

let stats t : stats =
  let s =
    ref
      {
        s_funcs = 0;
        s_blocks = 0;
        s_reachable = 0;
        s_const_defs = 0;
        s_dead_branches = 0;
        s_trap_divs = 0;
        s_oor_shifts = 0;
        s_sep_pairs = 0;
        s_widenings = 0;
      }
  in
  List.iter
    (fun (f : Cfg.func) ->
      match func_res t f.Cfg.name with
      | None -> ()
      | Some r ->
        let consts =
          Hashtbl.fold (fun _ v acc -> if is_singleton v then acc + 1 else acc) r.f_defs 0
        in
        let ds = func_diags t f in
        let count cls =
          List.fold_left
            (fun acc (d : Diag.t) -> if d.Diag.cls = cls then acc + d.Diag.count else acc)
            0 ds
        in
        s :=
          {
            s_funcs = !s.s_funcs + 1;
            s_blocks = !s.s_blocks + List.length f.Cfg.blocks;
            s_reachable = !s.s_reachable + Hashtbl.length r.f_entry;
            s_const_defs = !s.s_const_defs + consts;
            s_dead_branches = !s.s_dead_branches + Hashtbl.length r.f_branch;
            s_trap_divs = !s.s_trap_divs + count "trap-div";
            s_oor_shifts = !s.s_oor_shifts + count "shift-range";
            s_sep_pairs = !s.s_sep_pairs + sep_pair_count t f;
            s_widenings = !s.s_widenings + r.f_widens;
          })
    t.prog.Cfg.funcs;
  !s
