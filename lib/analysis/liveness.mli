(** Cross-block CFG analyses: branch-target resolution, register liveness
    (use-before-def across hyperblocks, dead writes), reachability.

    Block read/write header slots are the uses/defs: write slots commit
    unconditionally under block-atomic execution, so the block-level
    transfer functions are exact.  Use-before-def flags reads of registers
    no block of the function writes at all (modulo the ABI set r0-r9) —
    the register file is zero-initialized, so reads that merely precede
    their writes on some path observe a well-defined 0 and are legal. *)

val check_func :
  fname:string ->
  ?known_funcs:string list ->
  Trips_edge.Block.func ->
  Diag.t list
(** Analyze one function.  [known_funcs] enables callee resolution; omit it
    when the rest of the program is not available yet (per-pass compiler
    verification). *)

val check_program : Trips_edge.Block.program -> Diag.t list
(** Label uniqueness plus {!check_func} on every function with full callee
    resolution. *)
