(** Structured diagnostics for the EDGE static analyzer.

    Every finding carries a stable diagnostic class (["exit-path"],
    ["deadlock"], ["dead-code"], ...) used by the mutation test suite and by
    machine consumers of the JSON report, plus the location (function, block,
    instruction index) and an optional suggested fix. *)

type severity = Info | Warning | Error

type t = {
  sev : severity;
  pass : string;          (* originating analysis pass: "structure", "paths",
                             "liveness", "timing" ("driver" for compile
                             failures reported by the lint CLI) *)
  cls : string;           (* stable diagnostic class identifier *)
  fname : string;         (* enclosing function, "" when unknown *)
  block : string;         (* block label, "" for program-level findings *)
  inst : int option;      (* instruction index within the block *)
  msg : string;
  fix : string option;    (* suggested fix *)
  count : int;            (* occurrences collapsed by {!dedup}; 1 from {!make} *)
}

val make :
  ?sev:severity ->
  ?pass:string ->
  ?fname:string ->
  ?block:string ->
  ?inst:int ->
  ?fix:string ->
  string ->
  string ->
  t
(** [make cls msg] builds a diagnostic; severity defaults to [Error].
    [pass] names the originating analysis pass (stable, machine-consumed:
    lint and timing JSON reports can be merged and filtered on it). *)

val severity_name : severity -> string
val sort : t list -> t list
(** Most severe first, then by location. *)

val errors : t list -> int
val warnings : t list -> int
(** Severity totals; collapsed findings count with their multiplicity. *)

val dedup : t list -> t list
(** Stable deduplication: findings sharing severity, pass, class and
    location collapse into the first occurrence with a summed [count].
    Text and JSON emitters render the multiplicity. *)

val failed : strict:bool -> t list -> bool
(** A report fails when it contains errors; under [~strict:true] warnings
    fail it too.  [Info] findings never fail a report. *)

val location : t -> string
val to_line : t -> string
val render_text : t list -> string
val to_json : t -> Trips_util.Json.t
val list_to_json : t list -> Trips_util.Json.t
