(** Translation validation: per-pass symbolic equivalence checking.

    Each checker enumerates the feasible predicate paths of the target
    side of a compiler pass, replays the source side under the same
    path conditions, and compares normalized {!Symval} terms for every
    observable output (exit, register interface, memory stores, call
    events, return value).  Syntactic agreement proves a path; residual
    mismatches fall back to seeded random concretization, which either
    finds a decisive counterexample or upgrades the block to
    concretely-validated.  See DESIGN.md §11. *)

module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Cfg = Trips_tir.Cfg
module S = Symval
module Eblk = Trips_edge.Block
module Risa = Trips_risc.Isa

exception Refute of string
(** Structural divergence on the current path; caught by the
    enumerator and judged for feasibility. *)

(** {1 Exits} *)

type exitk =
  | Xjump of string
  | Xidx of int  (** RISC: labels compare by code index *)
  | Xcall of string * string
  | Xret

val exitk_name : exitk -> string

(** {1 Source regions} *)

type ritem =
  | Rins of Cfg.ins
  | Rif of Cfg.operand * ritem list * ritem list
  | Rexit of exitk
  | Rret of Cfg.operand option

type rconfig = {
  rc_iface : int -> S.t;  (** initial value of a virtual register *)
  rc_sym : string -> int64;  (** symbol addresses (linker layout) *)
  rc_isf : Cfg.operand -> bool;  (** float class of a call argument *)
  rc_dst_ch : int -> int;  (** havoc channel of a call destination *)
}

type rres = {
  rr_exit : exitk;
  rr_env : (int, S.t) Hashtbl.t;
  rr_ret : S.t option;
  rr_stores : (Ty.width * S.t * S.t) list;
  rr_calls : (string * (bool * S.t) list) list;
}

val run_region : pc:S.pc -> rconfig -> ritem list -> rres
(** Symbolic TIR execution; raises {!Symval.Fork} on an undetermined
    branch and {!Refute} when the region is malformed. *)

val ritems_of_block : Cfg.block -> ritem list

val cfg_live_out : Cfg.func -> string -> Set.Make(Int).t
(** Block-level vreg liveness over a CFG function. *)

(** {1 Verdicts and reports} *)

type verdict = Vproved | Vconcrete | Vrefuted

val verdict_name : verdict -> string

type report = {
  r_stage : string;
  r_fname : string;
  r_block : string;
  r_verdict : verdict;
  r_paths : int;
  r_diags : Diag.t list;
}

type summary = { n_proved : int; n_concrete : int; n_refuted : int }

val summarize : report list -> summary
val report_diags : report list -> Diag.t list

val mk_report :
  stage:string -> fname:string -> block:string -> verdict -> int -> Diag.t list -> report

val refuted_report : stage:string -> fname:string -> block:string -> string -> report
(** A structural refutation produced outside path enumeration. *)

(** {1 Pass checkers} *)

val check_opt :
  ?max_paths:int -> sym:(string -> int64) -> fname:string -> Cfg.func -> Cfg.func -> report list
(** [check_opt ~sym ~fname pre post] validates a TIR-to-TIR pass
    block-by-block: exits, live-out vregs, stores, call events and the
    return value must agree per feasible path. *)

val check_hblock :
  ?max_paths:int ->
  ?stage:string ->
  fname:string ->
  sym:(string -> int64) ->
  iface:(int -> S.t) ->
  writes:(int * int) list ->
  src:ritem list ->
  Eblk.t ->
  report
(** Validate a TIR region against the scheduled EDGE dataflow block
    it was converted to.  [iface] maps source vregs to architectural
    register terms; [writes] pairs each output vreg with its target
    register.  The declared write set must match [writes] exactly. *)

val check_schedule :
  fname:string ->
  (string
  * (Trips_edge.Isa.inst array * Eblk.read array * Eblk.write array))
  list ->
  Eblk.func ->
  report list
(** Scheduling is semantics-free: arrays must be unchanged from the
    pre-placement snapshot and the placement map well-formed. *)

val check_link : Eblk.program -> report list
(** Every jump target, call target and return label resolves. *)

(** {1 RISC backend} *)

type loc = Lreg of int | Lspill of int

val spill_off : int -> int

val check_risc_func :
  ?max_paths:int ->
  sym:(string -> int64) ->
  fname:string ->
  cls:(int -> bool) ->
  loc:(int -> loc) ->
  frame:int ->
  has_frame:bool ->
  Cfg.func ->
  Risa.func ->
  report list
(** Validate each CFG block of a function against its code range in
    the emitted RISC stream.  [cls v] is true for float vregs; [loc]
    is the register-allocation assignment; [frame]/[has_frame]
    describe the stack frame. *)

(** {1 Global passes} *)

val check_gapply :
  Cfg.program ->
  (string * Trips_tir.Opt.gfact list) list ->
  Cfg.program ->
  report list
(** [check_gapply mid applied g1] validates the global-optimization
    application: every applied fact must be independently re-derivable by
    a fresh abstract interpretation of the pre-application program [mid],
    and replaying the application on [mid] must reproduce [g1] exactly. *)

val check_relax : fname:string -> Eblk.t -> Eblk.t -> report
(** [check_relax ~fname pre post] validates an LSID relaxation: the two
    blocks must be identical except for permuted load/store sequence IDs,
    store-store order must be preserved, and every flipped load/store pair
    must be provably disjoint by {!Memsep} on the post block.  Load-load
    order is unconstrained: loads commute regardless of aliasing. *)
