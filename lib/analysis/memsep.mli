(** EDGE-block memory separation oracle.

    Walks a finished block's producer graph to bound the address of every
    load/store to a concrete interval (addresses are absolute at this
    level), then answers must-not-alias queries between them.  Shared by
    the compiler's LSID-relaxation pass and by the translation validator's
    relaxation check, so disjointness is always re-derived from the EDGE
    block itself. *)

type iv = { lo : int64; hi : int64 }

type memop = {
  m_inst : int;  (** instruction index within the block *)
  m_lsid : int;
  m_store : bool;
  m_addr : iv option;  (** start-address bounds, [None] = unknown *)
  m_bytes : int;
}

val memops : Trips_edge.Block.t -> memop list
(** Every load/store of the block in instruction order, with address
    intervals evaluated through Geni/Mov/Add/Sub/And/Shl/Zext chains
    (header reads and anything else are unknown). *)

val disjoint : memop -> memop -> bool
(** [true] only when the two accesses provably never overlap. *)
