(* Static critical-path timing analysis of scheduled EDGE blocks.

   The model is the optimistic core of the cycle-level simulator
   (Trips_sim.Core.time_block): progressive 16-wide dispatch, dataflow
   issue, per-opcode latencies from Isa.latency, operand-network hop
   costs as Manhattan distance on the Isa mesh geometry, cache-hit
   memory latency — but no link contention, no tile issue serialization,
   no cache misses and no load-wait serialization, so on an unpredicated
   block the prediction is a lower bound on the simulator.

   Every block is summarized as a max-plus system: each output (write
   slot availability at its RT, memory completion at the DTs, branch
   resolution at the GT) is the max of a constant lag from dispatch and,
   for each read slot, a lag from that register's availability.  The
   summaries compose over a dynamic block trace (see [step]), which is
   how the cross-validation harness predicts whole-program cycles
   without running the cycle-level simulator. *)

module Isa = Trips_edge.Isa
module Block = Trips_edge.Block

type model = {
  dispatch_rate : int;         (* instructions dispatched per cycle *)
  fetch_interval : int;        (* min cycles between back-to-back fetches *)
  redirect_penalty : int;      (* fetch restart after a misprediction *)
  commit_overhead : int;       (* distributed commit protocol *)
  window_blocks : int;         (* in-flight block frames *)
  l1i_hit : int;               (* I-cache hit latency (fetch cost floor) *)
  l1d_hit : int;               (* D-cache hit latency (load cost floor) *)
}

(* Mirrors Trips_sim.Core.prototype and the Trips_mem cache configs; the
   harness rebuilds the model from the simulator config it validates
   against, so a config change cannot silently diverge. *)
let prototype =
  {
    dispatch_rate = 16;
    fetch_interval = 8;
    redirect_penalty = 8;
    commit_overhead = 4;
    window_blocks = 8;
    l1i_hit = 1;
    l1d_hit = 2;
  }

let op_latency = Isa.latency

(* Sentinel for "unreachable from this source"; far enough from min_int
   that adding lags cannot wrap. *)
let neg = min_int / 4

type breakdown = {
  bk_compute : int;            (* execution latency on the critical path *)
  bk_route : int;              (* OPN hop cycles on the critical path *)
  bk_memory : int;             (* D-cache pipeline cycles on the path *)
  bk_overhead : int;           (* dispatch waits on the critical path *)
}

type summary = {
  s_label : string;
  s_n : int;
  s_crit : int;                (* critical path, relative to dispatch start *)
  s_completion : int array;    (* per-inst earliest completion (base scenario) *)
  s_slack : int array;         (* per-inst slack against s_crit *)
  s_breakdown : breakdown;     (* decomposition of s_crit *)
  s_tile_load : int array;     (* instructions placed per ET *)
  s_link_max : int;            (* static messages on the busiest OPN link *)
  s_contention_est : int;      (* advisory: link load exceeding the path span *)
  s_pred_depth : int;          (* deepest chain of dependent predicates *)
  (* max-plus composition rows (all lags relative to dispatch start;
     [neg] = no path) *)
  s_reads : int array;         (* read slot -> architectural register *)
  s_writes : int array;        (* write slot -> architectural register *)
  s_exit_insts : int array;    (* branch instruction index per exit, in
                                  Block.exits order *)
  s_dispatch_done : int;       (* last dispatch slot (read availability floor) *)
  s_base_write : int array;    (* write slot lag from dispatch *)
  s_base_mem : int;            (* store/load DT completion lag from dispatch *)
  s_base_resolve : int array;  (* per-exit GT resolution lag from dispatch *)
  s_read_write : int array array;   (* read k -> write slot lags *)
  s_read_mem : int array;           (* read k -> DT completion lag *)
  s_read_resolve : int array array; (* read k -> per-exit resolution lag *)
}

(* ------------------------------------------------------------------ *)
(* Mesh helpers                                                        *)
(* ------------------------------------------------------------------ *)

let dist = Isa.mesh_dist

(* The D-cache bank of a load/store is an address property the static
   analyzer cannot know; the nearest bank keeps the estimate a lower
   bound. *)
let min_dt_hops pos =
  let best = ref max_int in
  for b = 0 to Isa.num_dt_banks - 1 do
    let d = dist pos (Isa.dt_position b) in
    if d < !best then best := d
  done;
  !best

let argmin_dt_bank pos =
  let best = ref 0 in
  for b = 1 to Isa.num_dt_banks - 1 do
    if dist pos (Isa.dt_position b) < dist pos (Isa.dt_position !best) then
      best := b
  done;
  !best

(* YX (row-first) routing as in Trips_noc.Opn, for static link loads. *)
let route_links (r1, c1) (r2, c2) f =
  let r = ref r1 and c = ref c1 in
  while !r <> r2 do
    f ((!r * 5) + !c) (if r2 > !r then 1 else 0);
    r := if r2 > !r then !r + 1 else !r - 1
  done;
  while !c <> c2 do
    f ((!r * 5) + !c) (if c2 > !c then 2 else 3);
    c := if c2 > !c then !c + 1 else !c - 1
  done

(* ------------------------------------------------------------------ *)
(* Per-block analysis                                                  *)
(* ------------------------------------------------------------------ *)

(* Provenance of the binding term at each max, for critical-path
   extraction on the dispatch-source scenario. *)
type prov =
  | Pnone
  | Pdispatch                       (* the 16-wide dispatch slot bound *)
  | Pread of int * int              (* read slot, route hops *)
  | Pinst of int * int              (* producer instruction, route hops *)

type options = { model : model }

let default_options = { model = prototype }

let degenerate ~label n =
  {
    s_label = label;
    s_n = n;
    s_crit = 0;
    s_completion = Array.make n 0;
    s_slack = Array.make n 0;
    s_breakdown = { bk_compute = 0; bk_route = 0; bk_memory = 0; bk_overhead = 0 };
    s_tile_load = Array.make Isa.num_ets 0;
    s_link_max = 0;
    s_contention_est = 0;
    s_pred_depth = 0;
    s_reads = [||];
    s_writes = [||];
    s_exit_insts = [||];
    s_dispatch_done = 1;
    s_base_write = [||];
    s_base_mem = neg;
    s_base_resolve = [||];
    s_read_write = [||];
    s_read_mem = [||];
    s_read_resolve = [||];
  }

let analyze_block ?(options = default_options) ~fname (b : Block.t) :
    summary * Diag.t list =
  let m = options.model in
  let n = Array.length b.Block.insts in
  let nr = Array.length b.Block.reads in
  let nw = Array.length b.Block.writes in
  let label = b.Block.label in
  let diags = ref [] in
  let emit ?inst ?fix ?(sev = Diag.Warning) cls msg =
    diags := Diag.make ~sev ~pass:"timing" ~fname ~block:label ?inst ?fix cls msg :: !diags
  in
  let exits = Block.exits b in
  let exit_insts = Array.of_list (List.map fst exits) in
  let ne = Array.length exit_insts in
  let placed =
    Array.length b.Block.placement = n
    && Array.for_all (fun et -> et >= 0 && et < Isa.num_ets) b.Block.placement
  in
  if not placed then begin
    emit "timing-skipped" "block has no valid placement; timing not computed"
      ~fix:"run the scheduler (Schedule.place) before timing analysis";
    ({ (degenerate ~label n) with s_exit_insts = exit_insts }, List.rev !diags)
  end
  else begin
    let pos i = Isa.tile_position b.Block.placement.(i) in
    let dispatched i = 1 + (i / m.dispatch_rate) in
    let dispatch_done = 1 + ((max 1 n - 1) / m.dispatch_rate) in
    (* topological order over To_inst edges *)
    let indeg = Array.make n 0 in
    let succs = Array.make n [] in
    Array.iteri
      (fun i (ins : Isa.inst) ->
        List.iter
          (function
            | Isa.To_inst (j, _) when j >= 0 && j < n ->
              succs.(i) <- j :: succs.(i);
              indeg.(j) <- indeg.(j) + 1
            | _ -> ())
          ins.Isa.targets)
      b.Block.insts;
    let order = Queue.create () in
    Array.iteri (fun i d -> if d = 0 then Queue.push i order) indeg;
    let topo = Array.make n (-1) in
    let filled = ref 0 in
    let indeg' = Array.copy indeg in
    while not (Queue.is_empty order) do
      let i = Queue.pop order in
      topo.(!filled) <- i;
      incr filled;
      List.iter
        (fun j ->
          indeg'.(j) <- indeg'.(j) - 1;
          if indeg'.(j) = 0 then Queue.push j order)
        succs.(i)
    done;
    if !filled <> n then begin
      emit "timing-skipped" ~sev:Diag.Error
        "dataflow graph is cyclic; timing not computed"
        ~fix:"fix the block (see the structure/paths passes)";
      ({ (degenerate ~label n) with s_exit_insts = exit_insts }, List.rev !diags)
    end
    else begin
      let ns = 1 + nr in (* sources: 0 = dispatch, 1+k = read slot k *)
      let arrival = Array.make_matrix ns n neg in
      let comp = Array.make_matrix ns n neg in
      let arrival_prov = Array.make n Pnone in      (* base scenario only *)
      let write_time = Array.make_matrix ns (max nw 1) neg in
      let write_prov = Array.make (max nw 1) Pnone in
      let mem_out = Array.make ns neg in
      let mem_prov = ref Pnone in
      let resolve = Array.make_matrix ns (max ne 1) neg in
      (* static link loads *)
      let link_load = Array.make (5 * 5 * 4) 0 in
      let add_route src dst =
        route_links src dst (fun node dir ->
            let id = (node * 4) + dir in
            link_load.(id) <- link_load.(id) + 1)
      in
      let bump_arrival s j t p =
        if t > arrival.(s).(j) then begin
          arrival.(s).(j) <- t;
          if s = 0 then arrival_prov.(j) <- p
        end
      in
      let bump_write s w t p =
        if t > write_time.(s).(w) then begin
          write_time.(s).(w) <- t;
          if s = 0 then write_prov.(w) <- p
        end
      in
      (* read injections: available at max(dispatch done, register ready);
         the dispatch-source row models the former, the read-source row the
         latter.  A read targeting a write slot forwards directly (no OPN
         leg), as in the simulator. *)
      Array.iteri
        (fun k (r : Block.read) ->
          let rp = Isa.rt_position r.Block.rreg in
          List.iter
            (function
              | Isa.To_inst (j, _) when j >= 0 && j < n ->
                let h = dist rp (pos j) in
                add_route rp (pos j);
                bump_arrival 0 j (dispatch_done + h) (Pread (k, h));
                bump_arrival (1 + k) j h Pnone
              | Isa.To_write w when w >= 0 && w < nw ->
                bump_write 0 w dispatch_done (Pread (k, 0));
                bump_write (1 + k) w 0 Pnone
              | _ -> ())
            r.Block.rtargets)
        b.Block.reads;
      (* forward pass in topological order *)
      let lat i = Isa.latency b.Block.insts.(i).Isa.op in
      Array.iter
        (fun i ->
          let ins = b.Block.insts.(i) in
          let p = pos i in
          (* readiness per source; the dispatch slot clamps the base row *)
          let ready0 =
            let a = arrival.(0).(i) in
            if a >= dispatched i then a
            else begin
              arrival_prov.(i) <- Pdispatch;
              dispatched i
            end
          in
          for s = 0 to ns - 1 do
            let ready = if s = 0 then ready0 else arrival.(s).(i) in
            if ready > neg then begin
              match ins.Isa.op with
              | Isa.Load _ ->
                let d1 = min_dt_hops p in
                (* request reaches the DT: a block output (LSID completion) *)
                let t_dt = ready + d1 in
                if t_dt > mem_out.(s) then begin
                  mem_out.(s) <- t_dt;
                  if s = 0 then mem_prov := Pinst (i, 0)
                end;
                comp.(s).(i) <- t_dt + m.l1d_hit
              | Isa.Store _ ->
                let d1 = min_dt_hops p in
                let t_dt = ready + lat i + d1 in
                if t_dt > mem_out.(s) then begin
                  mem_out.(s) <- t_dt;
                  if s = 0 then mem_prov := Pinst (i, 0)
                end;
                comp.(s).(i) <- t_dt
              | Isa.Branch _ ->
                let done_t = ready + lat i in
                comp.(s).(i) <- done_t;
                let t = done_t + dist p Isa.gt_position in
                (match
                   Array.to_seqi exit_insts
                   |> Seq.find (fun (_, bi) -> bi = i)
                 with
                | Some (e, _) ->
                  if t > resolve.(s).(e) then resolve.(s).(e) <- t
                | None -> ())
              | _ -> comp.(s).(i) <- ready + lat i
            end
          done;
          (* static routes and delivery edges *)
          (match ins.Isa.op with
          | Isa.Load _ ->
            add_route p (Isa.dt_position (argmin_dt_bank p));
            List.iter
              (function
                | Isa.To_inst (j, _) when j >= 0 && j < n ->
                  (* data returns from the DT, not the load's ET *)
                  let dtj = ref max_int and bank = ref 0 in
                  for bk = 0 to Isa.num_dt_banks - 1 do
                    let d = dist (Isa.dt_position bk) (pos j) in
                    if d < !dtj then begin dtj := d; bank := bk end
                  done;
                  add_route (Isa.dt_position !bank) (pos j);
                  for s = 0 to ns - 1 do
                    if comp.(s).(i) > neg then
                      bump_arrival s j (comp.(s).(i) + !dtj) (Pinst (i, !dtj))
                  done
                | Isa.To_write w when w >= 0 && w < nw ->
                  let h = dist p (Isa.rt_position b.Block.writes.(w).Block.wreg) in
                  add_route p (Isa.rt_position b.Block.writes.(w).Block.wreg);
                  for s = 0 to ns - 1 do
                    if comp.(s).(i) > neg then
                      bump_write s w (comp.(s).(i) + h) (Pinst (i, h))
                  done
                | _ -> ())
              ins.Isa.targets
          | Isa.Store _ | Isa.Branch _ ->
            (match ins.Isa.op with
            | Isa.Branch _ -> add_route p Isa.gt_position
            | _ -> add_route p (Isa.dt_position (argmin_dt_bank p)))
          | _ ->
            List.iter
              (function
                | Isa.To_inst (j, _) when j >= 0 && j < n ->
                  let h = dist p (pos j) in
                  add_route p (pos j);
                  for s = 0 to ns - 1 do
                    if comp.(s).(i) > neg then
                      bump_arrival s j (comp.(s).(i) + h) (Pinst (i, h))
                  done
                | Isa.To_write w when w >= 0 && w < nw ->
                  let rp = Isa.rt_position b.Block.writes.(w).Block.wreg in
                  let h = dist p rp in
                  add_route p rp;
                  for s = 0 to ns - 1 do
                    if comp.(s).(i) > neg then
                      bump_write s w (comp.(s).(i) + h) (Pinst (i, h))
                  done
                | _ -> ())
              ins.Isa.targets))
        topo;
      (* base outputs and the critical path *)
      let resolve_floor = 1 in
      let base_resolve =
        Array.init ne (fun e -> max resolve_floor resolve.(0).(e))
      in
      let best_write = ref neg and best_w = ref (-1) in
      for w = 0 to nw - 1 do
        if write_time.(0).(w) > !best_write then begin
          best_write := write_time.(0).(w);
          best_w := w
        end
      done;
      let best_resolve = Array.fold_left max neg base_resolve in
      let crit = max (max !best_write mem_out.(0)) (max best_resolve 0) in
      (* breakdown: walk the binding chain of the critical output *)
      let bk_compute = ref 0 and bk_route = ref 0 in
      let bk_memory = ref 0 and bk_overhead = ref 0 in
      let rec walk_node i =
        (match b.Block.insts.(i).Isa.op with
        | Isa.Load _ ->
          bk_route := !bk_route + min_dt_hops (pos i);
          bk_memory := !bk_memory + m.l1d_hit
        | Isa.Store _ ->
          bk_route := !bk_route + min_dt_hops (pos i);
          bk_compute := !bk_compute + lat i
        | _ -> bk_compute := !bk_compute + lat i);
        match arrival_prov.(i) with
        | Pdispatch | Pnone -> bk_overhead := !bk_overhead + dispatched i
        | Pread (_, h) ->
          bk_route := !bk_route + h;
          bk_overhead := !bk_overhead + dispatch_done
        | Pinst (j, h) ->
          bk_route := !bk_route + h;
          walk_node j
      in
      let walk_output = function
        | Pnone -> bk_overhead := !bk_overhead + crit
        | Pdispatch -> bk_overhead := !bk_overhead + crit
        | Pread (_, h) ->
          bk_route := !bk_route + h;
          bk_overhead := !bk_overhead + dispatch_done
        | Pinst (i, h) ->
          bk_route := !bk_route + h;
          walk_node i
      in
      (if crit = !best_write && !best_w >= 0 then walk_output write_prov.(!best_w)
       else if crit = mem_out.(0) then walk_output !mem_prov
       else if crit = best_resolve then begin
         (* find the binding exit branch *)
         let e = ref (-1) in
         Array.iteri (fun k t -> if t = best_resolve && !e < 0 then e := k) base_resolve;
         if !e >= 0 && resolve.(0).(!e) = best_resolve then begin
           let i = exit_insts.(!e) in
           bk_route := !bk_route + dist (pos i) Isa.gt_position;
           walk_node i
         end
         else bk_overhead := !bk_overhead + crit (* resolve floor *)
       end
       else bk_overhead := !bk_overhead + crit);
      let breakdown =
        {
          bk_compute = !bk_compute;
          bk_route = !bk_route;
          bk_memory = !bk_memory;
          bk_overhead = !bk_overhead;
        }
      in
      (* per-instruction slack: longest remaining path from issue *)
      let tail = Array.make n 0 in
      for k = n - 1 downto 0 do
        let i = topo.(k) in
        let ins = b.Block.insts.(i) in
        let p = pos i in
        let t =
          match ins.Isa.op with
          | Isa.Load _ ->
            let d1 = min_dt_hops p in
            List.fold_left
              (fun acc -> function
                | Isa.To_inst (j, _) when j >= 0 && j < n ->
                  let d2 = ref max_int in
                  for bk = 0 to Isa.num_dt_banks - 1 do
                    let d = dist (Isa.dt_position bk) (pos j) in
                    if d < !d2 then d2 := d
                  done;
                  max acc (d1 + m.l1d_hit + !d2 + tail.(j))
                | Isa.To_write w when w >= 0 && w < nw ->
                  max acc
                    (d1 + m.l1d_hit
                    + dist p (Isa.rt_position b.Block.writes.(w).Block.wreg))
                | _ -> acc)
              d1 ins.Isa.targets
          | Isa.Store _ -> lat i + min_dt_hops p
          | Isa.Branch _ -> lat i + dist p Isa.gt_position
          | _ ->
            List.fold_left
              (fun acc -> function
                | Isa.To_inst (j, _) when j >= 0 && j < n ->
                  max acc (lat i + dist p (pos j) + tail.(j))
                | Isa.To_write w when w >= 0 && w < nw ->
                  max acc
                    (lat i + dist p (Isa.rt_position b.Block.writes.(w).Block.wreg))
                | _ -> acc)
              (lat i) ins.Isa.targets
        in
        tail.(i) <- t
      done;
      let issue0 i = max (arrival.(0).(i)) (dispatched i) in
      let slack =
        Array.init n (fun i -> max 0 (crit - (issue0 i + tail.(i))))
      in
      let completion = Array.init n (fun i -> max 0 comp.(0).(i)) in
      (* tile loads and link hotspots *)
      let tile_load = Array.make Isa.num_ets 0 in
      Array.iter
        (fun et -> tile_load.(et) <- tile_load.(et) + 1)
        b.Block.placement;
      let link_max = Array.fold_left max 0 link_load in
      let contention_est = max 0 (link_max - max 1 crit) in
      (* predicate chain depth *)
      let pdepth = Array.make n (-1) in
      let rec pred_depth i =
        if pdepth.(i) >= 0 then pdepth.(i)
        else begin
          pdepth.(i) <- 0;
          (* 0 breaks cycles defensively *)
          let d =
            match b.Block.insts.(i).Isa.pred with
            | Isa.Unpred -> 0
            | Isa.On_true p | Isa.On_false p ->
              if p >= 0 && p < n then 1 + pred_depth p else 1
          in
          pdepth.(i) <- d;
          d
        end
      in
      let max_pred = ref 0 and max_pred_i = ref 0 in
      for i = 0 to n - 1 do
        let d = pred_depth i in
        if d > !max_pred then begin
          max_pred := d;
          max_pred_i := i
        end
      done;
      (* placement-quality diagnostics *)
      let rec flag_long_routes i =
        (match arrival_prov.(i) with
        | Pinst (j, h) ->
          if h >= 4 then
            emit ~inst:i "route-critical"
              (Printf.sprintf
                 "critical-path operand from I%d travels %d OPN hops" j h)
              ~fix:"co-locate producer and consumer (scheduler anchors)";
          flag_long_routes j
        | Pread (k, h) ->
          if h >= 4 then
            emit ~inst:i "route-critical"
              (Printf.sprintf
                 "critical-path operand from read slot R%d travels %d OPN hops"
                 k h)
              ~fix:"place the consumer nearer its register tile"
        | _ -> ())
      in
      (match write_prov.(max 0 !best_w) with
      | Pinst (i, _) when crit = !best_write -> flag_long_routes i
      | _ -> (
        match !mem_prov with
        | Pinst (i, _) when crit = mem_out.(0) -> flag_long_routes i
        | _ -> ()));
      let busiest = ref 0 in
      Array.iteri
        (fun et c -> if c > tile_load.(!busiest) then busiest := et
                     ; ignore c)
        tile_load;
      if
        n >= 8
        && tile_load.(!busiest) * 4 >= n * 3
        && tile_load.(!busiest) > 2
      then
        emit "et-hotspot"
          (Printf.sprintf
             "tile %d holds %d of %d instructions; placement is concentrated"
             !busiest tile_load.(!busiest) n)
          ~fix:"rebalance the placement across the ET grid";
      if contention_est > 0 then
        emit "opn-hotspot"
          (Printf.sprintf
             "busiest OPN link carries %d messages over a %d-cycle path"
             link_max (max 1 crit))
          ~fix:"spread communicating instructions across mesh rows/columns";
      if !max_pred >= 4 then
        emit ~inst:!max_pred_i "pred-chain"
          (Printf.sprintf "predicate chain of depth %d serializes the block"
             !max_pred)
          ~fix:"balance the predicate computation into a tree of tests";
      let summary =
        {
          s_label = label;
          s_n = n;
          s_crit = crit;
          s_completion = completion;
          s_slack = slack;
          s_breakdown = breakdown;
          s_tile_load = tile_load;
          s_link_max = link_max;
          s_contention_est = contention_est;
          s_pred_depth = !max_pred;
          s_reads = Array.map (fun (r : Block.read) -> r.Block.rreg) b.Block.reads;
          s_writes =
            Array.map (fun (w : Block.write) -> w.Block.wreg) b.Block.writes;
          s_exit_insts = exit_insts;
          s_dispatch_done = dispatch_done;
          s_base_write = Array.init nw (fun w -> write_time.(0).(w));
          s_base_mem = mem_out.(0);
          s_base_resolve = base_resolve;
          s_read_write =
            Array.init nr (fun k -> Array.init nw (fun w -> write_time.(1 + k).(w)));
          s_read_mem = Array.init nr (fun k -> mem_out.(1 + k));
          s_read_resolve =
            Array.init nr (fun k -> Array.init ne (fun e -> resolve.(1 + k).(e)));
        }
      in
      (summary, List.rev !diags)
    end
  end

(* ------------------------------------------------------------------ *)
(* Program-level analysis                                              *)
(* ------------------------------------------------------------------ *)

(* Register round-trips: block B's critical path ends in a register write
   that starts the critical path of its unique jump successor C — the
   value crosses the RT instead of staying in dataflow, which hyperblock
   growth could avoid. *)
let check_roundtrips ~fname (f : Block.func)
    (summaries : (string, summary) Hashtbl.t) : Diag.t list =
  let out = ref [] in
  List.iter
    (fun (b : Block.t) ->
      match (Block.exits b, Hashtbl.find_opt summaries b.Block.label) with
      | [ (_, Isa.Xjump next) ], Some sb when sb.s_crit > 0 -> (
        match Hashtbl.find_opt summaries next with
        | Some sc
          when List.exists
                 (fun (blk : Block.t) -> blk.Block.label = next)
                 f.Block.blocks ->
          Array.iteri
            (fun w t ->
              if t = sb.s_crit then
                (* the write is B's critical output; does C's critical path
                   start at a read of the same register? *)
                let reg = sb.s_writes.(w) in
                Array.iteri
                  (fun k r ->
                    if r = reg then begin
                      let drives =
                        Array.exists (fun l -> l > neg && l + sc.s_dispatch_done >= sc.s_crit)
                          sc.s_read_write.(k)
                        || (sc.s_read_mem.(k) > neg
                            && sc.s_read_mem.(k) + sc.s_dispatch_done >= sc.s_crit)
                        || Array.exists (fun l -> l > neg && l + sc.s_dispatch_done >= sc.s_crit)
                             sc.s_read_resolve.(k)
                      in
                      if drives then
                        out :=
                          Diag.make ~sev:Diag.Info ~pass:"timing" ~fname
                            ~block:b.Block.label "reg-roundtrip"
                            (Printf.sprintf
                               "r%d carries the critical path from %s to %s \
                                through the register file"
                               reg b.Block.label next)
                            ~fix:
                              "grow the hyperblock so the value stays in \
                               dataflow"
                          :: !out
                    end)
                  sc.s_reads)
            sb.s_base_write
        | _ -> ())
      | _ -> ())
    f.Block.blocks;
  List.rev !out

let summarize_program ?(options = default_options) (p : Block.program) :
    (string, summary) Hashtbl.t * Diag.t list =
  let summaries = Hashtbl.create 64 in
  let diags = ref [] in
  List.iter
    (fun (f : Block.func) ->
      List.iter
        (fun (b : Block.t) ->
          let s, ds = analyze_block ~options ~fname:f.Block.fname b in
          Hashtbl.replace summaries b.Block.label s;
          diags := List.rev_append ds !diags)
        f.Block.blocks)
    p.Block.funcs;
  List.iter
    (fun (f : Block.func) ->
      diags :=
        List.rev_append (check_roundtrips ~fname:f.Block.fname f summaries) !diags)
    p.Block.funcs;
  (summaries, List.rev !diags)

(* ------------------------------------------------------------------ *)
(* Trace composition: whole-program cycle prediction                   *)
(* ------------------------------------------------------------------ *)

type state = {
  m : model;
  reg_ready : int array;
  commits : int array;              (* window ring of commit times *)
  mutable last_commit : int;
  mutable prev_fetch : int;
  mutable prev_resolve : int;
  mutable seq : int;
  mutable stepped : int;
  mutable mispredicts : int;
}

let create m =
  {
    m;
    reg_ready = Array.make Isa.num_regs 0;
    commits = Array.make m.window_blocks 0;
    last_commit = 0;
    prev_fetch = 0;
    prev_resolve = 0;
    seq = 0;
    stepped = 0;
    mispredicts = 0;
  }

let step st (s : summary) ~exit_idx ~prev_correct =
  let m = st.m in
  let frame_limit =
    if st.seq >= m.window_blocks then st.commits.(st.seq mod m.window_blocks)
    else 0
  in
  let fetch =
    if st.stepped = 0 then 0
    else if prev_correct then max (st.prev_fetch + m.fetch_interval) frame_limit
    else begin
      st.mispredicts <- st.mispredicts + 1;
      max (st.prev_resolve + m.redirect_penalty) frame_limit
    end
  in
  let d = fetch + m.l1i_hit in
  let nr = Array.length s.s_reads in
  let nw = Array.length s.s_writes in
  let read_avail = Array.map (fun r -> st.reg_ready.(r)) s.s_reads in
  let combine base row =
    (* max of the dispatch lag and every read-source lag *)
    let t = ref (if base > neg then d + base else neg) in
    for k = 0 to nr - 1 do
      let l = row k in
      if l > neg then t := max !t (read_avail.(k) + l)
    done;
    !t
  in
  let writes =
    Array.init nw (fun w ->
        combine s.s_base_write.(w) (fun k -> s.s_read_write.(k).(w)))
  in
  let mem = combine s.s_base_mem (fun k -> s.s_read_mem.(k)) in
  let ne = Array.length s.s_base_resolve in
  let e = if ne = 0 then -1 else max 0 (min exit_idx (ne - 1)) in
  let resolve =
    if e < 0 then d + 1
    else
      max (d + 1)
        (combine s.s_base_resolve.(e) (fun k -> s.s_read_resolve.(k).(e)))
  in
  let done_t =
    Array.fold_left max (max resolve (max mem (d + 1))) writes
  in
  let commit = max (done_t + m.commit_overhead) (st.last_commit + 1) in
  st.last_commit <- commit;
  st.commits.(st.seq mod m.window_blocks) <- commit;
  st.seq <- st.seq + 1;
  st.stepped <- st.stepped + 1;
  Array.iteri (fun w t -> if t > neg then st.reg_ready.(s.s_writes.(w)) <- t) writes;
  st.prev_fetch <- fetch;
  st.prev_resolve <- resolve

let cycles st = max 1 st.last_commit
let blocks_stepped st = st.stepped
let mispredicts st = st.mispredicts

let predicted_block_cost m (s : summary) =
  m.l1i_hit + s.s_crit + m.commit_overhead
