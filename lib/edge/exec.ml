module Ty = Trips_tir.Ty
module Ast = Trips_tir.Ast
module Image = Trips_tir.Image
module Semantics = Trips_tir.Semantics

type token = Val of Ty.value | Nul

type mem_event = {
  ev_inst : int;
  ev_lsid : int;
  ev_is_load : bool;
  ev_addr : int;
  ev_width : Ty.width;
  ev_null : bool;
}

type instance = {
  iblock : Block.t;
  fired : bool array;
  useful : bool array;
  exit_inst : int;
  exit_dest : Isa.exit_dest;
  mem_events : mem_event list;
}

type stats = {
  mutable blocks : int;
  mutable fetched : int;
  mutable executed : int;
  mutable not_executed : int;
  mutable executed_not_used : int;
  mutable useful : int;
  mutable k_arith : int;
  mutable k_memory : int;
  mutable k_control : int;
  mutable k_test : int;
  mutable k_move : int;
  mutable reads_fetched : int;
  mutable writes_committed : int;
  mutable stores_committed : int;
  mutable loads_executed : int;
  mutable opn_et_et : int;
  mutable opn_rt_et : int;
  mutable opn_et_rt : int;
  mutable opn_et_dt : int;
  mutable opn_dt_et : int;
  mutable opn_et_gt : int;
  mutable flops : int;
}

let empty_stats () =
  {
    blocks = 0; fetched = 0; executed = 0; not_executed = 0;
    executed_not_used = 0; useful = 0;
    k_arith = 0; k_memory = 0; k_control = 0; k_test = 0; k_move = 0;
    reads_fetched = 0; writes_committed = 0; stores_committed = 0;
    loads_executed = 0;
    opn_et_et = 0; opn_rt_et = 0; opn_et_rt = 0; opn_et_dt = 0;
    opn_dt_et = 0; opn_et_gt = 0; flops = 0;
  }

type result = {
  ret : Ty.value option;
  stats : stats;
}

exception Stuck of string * string

let abi_ret_reg = 1
let abi_arg_regs = [ 2; 3; 4; 5; 6; 7; 8; 9 ]

let is_flop (op : Isa.opcode) =
  match op with
  | Isa.Bin (Ast.Fadd | Ast.Fsub | Ast.Fmul | Ast.Fdiv) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Single block execution                                              *)
(* ------------------------------------------------------------------ *)

type pending_store = {
  ps_inst : int;
  ps_lsid : int;
  ps_width : Ty.width;
  ps_addr : int;           (* meaningless when nullified *)
  ps_data : token;
}

let token_int label = function
  | Val v -> Ty.as_int v
  | Nul -> raise (Stuck (label, "null token in arithmetic"))

(* Facts about a block that the executor needs on every instance but that
   depend only on the static code: computed once per label in {!run}.

   Targets are pre-encoded as ints ([To_write w] is [-w - 1], [To_inst
   (i, s)] is [i * 4 + slot]) in one flat array per block so the fire
   loop iterates a slice instead of walking a list of boxed variants. *)
type xstatic = {
  xs_store_sites : int;                (* static stores in the block *)
  xs_stores_below : int array;         (* per LSID L: stores with lsid < L *)
  xs_zero_ready : int array;           (* 0-arity unpredicated insts *)
  xs_write_producer : bool array;      (* has a To_write target *)
  xs_arity : int array;                (* operand arity per inst *)
  xs_is_load : bool array;             (* is a load per inst *)
  xs_class : Isa.klass array;          (* Isa.classify per inst *)
  xs_toff : int array;                 (* inst -> first encoded target *)
  xs_tenc : int array;                 (* encoded targets, flattened *)
  xs_roff : int array;                 (* read -> first encoded target *)
  xs_renc : int array;                 (* encoded read targets, flattened *)
}

let encode_target = function
  | Isa.To_write w -> -w - 1
  | Isa.To_inst (i, Isa.Op0) -> i * 4
  | Isa.To_inst (i, Isa.Op1) -> (i * 4) + 1
  | Isa.To_inst (i, Isa.OpPred) -> (i * 4) + 2

let build_xstatic (b : Block.t) : xstatic =
  let max_lsid = ref 0 in
  Array.iter
    (fun (ins : Isa.inst) ->
      match ins.op with
      | Isa.Store (_, l) | Isa.Load (_, _, l) ->
        if l > !max_lsid then max_lsid := l
      | _ -> ())
    b.insts;
  let stores_below = Array.make (!max_lsid + 2) 0 in
  let store_sites = ref 0 in
  Array.iter
    (fun (ins : Isa.inst) ->
      match ins.op with
      | Isa.Store (_, l) ->
        incr store_sites;
        for k = l + 1 to !max_lsid + 1 do
          stores_below.(k) <- stores_below.(k) + 1
        done
      | _ -> ())
    b.insts;
  let zero = ref [] in
  for i = Array.length b.insts - 1 downto 0 do
    let ins = b.insts.(i) in
    if Isa.operand_arity ins = 0 && ins.Isa.pred = Isa.Unpred then
      zero := i :: !zero
  done;
  let n = Array.length b.insts in
  let toff = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    toff.(i + 1) <- toff.(i) + List.length b.insts.(i).Isa.targets
  done;
  let tenc = Array.make (max 1 toff.(n)) 0 in
  for i = 0 to n - 1 do
    List.iteri
      (fun k t -> tenc.(toff.(i) + k) <- encode_target t)
      b.insts.(i).Isa.targets
  done;
  let nr = Array.length b.reads in
  let roff = Array.make (nr + 1) 0 in
  for r = 0 to nr - 1 do
    roff.(r + 1) <- roff.(r) + List.length b.reads.(r).Block.rtargets
  done;
  let renc = Array.make (max 1 roff.(nr)) 0 in
  for r = 0 to nr - 1 do
    List.iteri
      (fun k t -> renc.(roff.(r) + k) <- encode_target t)
      b.reads.(r).Block.rtargets
  done;
  {
    xs_store_sites = !store_sites;
    xs_stores_below = stores_below;
    xs_zero_ready = Array.of_list !zero;
    xs_write_producer =
      Array.map
        (fun (ins : Isa.inst) ->
          List.exists
            (function Isa.To_write _ -> true | Isa.To_inst _ -> false)
            ins.Isa.targets)
        b.insts;
    xs_arity = Array.map Isa.operand_arity b.insts;
    xs_is_load =
      Array.map
        (fun (ins : Isa.inst) ->
          match ins.Isa.op with Isa.Load _ -> true | _ -> false)
        b.insts;
    xs_class = Array.map (fun (ins : Isa.inst) -> Isa.classify ins.Isa.op) b.insts;
    xs_toff = toff;
    xs_tenc = tenc;
    xs_roff = roff;
    xs_renc = renc;
  }

(* Reusable per-instance state, grown to the largest block executed so far
   so the hot loop allocates almost nothing per instance.  Operand slots
   are struct-of-arrays with a presence bitmask ([xg_*] bits below)
   instead of one record of [token option]s per instruction. *)
let g_op0 = 1
let g_op1 = 2
let g_pred = 4

type xscratch = {
  mutable got : int array;             (* presence bitmask per inst *)
  mutable tok0 : token array;
  mutable tok1 : token array;
  mutable tokp : token array;
  mutable src0 : int array;            (* producer index, -1 = read slot *)
  mutable src1 : int array;
  mutable srcp : int array;
  mutable value : token array;         (* result after firing *)
  mutable ustack : int array;          (* usefulness DFS worklist *)
  mutable ring : int array;            (* ready queue (FIFO) *)
  mutable rhead : int;
  mutable rlen : int;
  mutable store_cnt : int array;       (* fired stores per LSID *)
}

let make_xscratch () =
  {
    got = Array.make Isa.max_insts 0;
    tok0 = Array.make Isa.max_insts Nul;
    tok1 = Array.make Isa.max_insts Nul;
    tokp = Array.make Isa.max_insts Nul;
    src0 = Array.make Isa.max_insts (-1);
    src1 = Array.make Isa.max_insts (-1);
    srcp = Array.make Isa.max_insts (-1);
    value = Array.make Isa.max_insts Nul;
    ustack = Array.make Isa.max_insts 0;
    ring = Array.make 256 0;
    rhead = 0;
    rlen = 0;
    store_cnt = Array.make (Isa.max_lsids + 2) 0;
  }

let xscratch_grow xc n max_lsid =
  if n > Array.length xc.got then begin
    xc.got <- Array.make n 0;
    xc.tok0 <- Array.make n Nul;
    xc.tok1 <- Array.make n Nul;
    xc.tokp <- Array.make n Nul;
    xc.src0 <- Array.make n (-1);
    xc.src1 <- Array.make n (-1);
    xc.srcp <- Array.make n (-1);
    xc.value <- Array.make n Nul;
    xc.ustack <- Array.make n 0
  end;
  if max_lsid + 2 > Array.length xc.store_cnt then
    xc.store_cnt <- Array.make (max_lsid + 2) 0

let ring_push xc i =
  let cap = Array.length xc.ring in
  if xc.rlen = cap then begin
    let ring' = Array.make (2 * cap) 0 in
    for k = 0 to xc.rlen - 1 do
      ring'.(k) <- xc.ring.((xc.rhead + k) land (cap - 1))
    done;
    xc.ring <- ring';
    xc.rhead <- 0
  end;
  let cap = Array.length xc.ring in
  xc.ring.((xc.rhead + xc.rlen) land (cap - 1)) <- i;
  xc.rlen <- xc.rlen + 1

let ring_pop xc =
  let i = xc.ring.(xc.rhead) in
  xc.rhead <- (xc.rhead + 1) land (Array.length xc.ring - 1);
  xc.rlen <- xc.rlen - 1;
  i

(* Execute one block instance against register file and memory.
   Returns the instance plus commit effects. *)
let exec_block ~stats ~fuel ~(xs : xstatic) ~(xc : xscratch) (b : Block.t)
    (regs : Ty.value array) (image : Image.t) : instance * (int * Ty.value) list =
  let n = Array.length b.insts in
  let max_lsid = Array.length xs.xs_stores_below - 2 in
  xscratch_grow xc n max_lsid;
  let got = xc.got and tok0 = xc.tok0 and tok1 = xc.tok1 and tokp = xc.tokp in
  let src0 = xc.src0 and src1 = xc.src1 and srcp = xc.srcp in
  let value = xc.value in
  for i = 0 to n - 1 do
    Array.unsafe_set got i 0;
    Array.unsafe_set src0 i (-1);
    Array.unsafe_set src1 i (-1);
    Array.unsafe_set srcp i (-1)
  done;
  Array.fill xc.store_cnt 0 (max_lsid + 2) 0;
  xc.rhead <- 0;
  xc.rlen <- 0;
  let fired = Array.make n false in
  let write_results : (int * Ty.value) list ref = ref [] in   (* write slot -> value *)
  let stores : pending_store list ref = ref [] in
  let stores_done = ref 0 in
  let exit_fired = ref None in
  let pending_loads : int list ref = ref [] in
  (* can a load with this lsid go? all static stores with lower lsid done *)
  let lower_stores_done lsid =
    let fired_below = ref 0 in
    for l = 0 to lsid - 1 do
      fired_below := !fired_below + xc.store_cnt.(l)
    done;
    !fired_below = xs.xs_stores_below.(lsid)
  in
  (* forward from in-flight stores: build each byte from the youngest
     lower-LSID store covering it, falling back to memory.  The common
     case — no in-flight lower-LSID store overlaps the loaded range — is
     detected with one scan and served by a single full-width read. *)
  let load_value ty width lsid addr =
    let bytes = Ty.bytes_of_width width in
    let overlapping = ref false in
    List.iter
      (fun ps ->
        if
          (match ps.ps_data with Nul -> false | Val _ -> true)
          && ps.ps_lsid < lsid
          && ps.ps_addr < addr + bytes
          && addr < ps.ps_addr + Ty.bytes_of_width ps.ps_width
        then overlapping := true)
      !stores;
    if not !overlapping then begin
      let raw = Image.load_u image width addr in
      match ty with
      | Ty.I64 -> Ty.Vi (Semantics.zext width raw)
      | Ty.F64 -> Ty.Vf (Int64.float_of_bits raw)
    end
    else begin
      let byte k =
        let a = addr + k in
        let best = ref None in
        List.iter
          (fun ps ->
            if (match ps.ps_data with Nul -> false | Val _ -> true)
               && ps.ps_lsid < lsid
            then begin
              let sb = Ty.bytes_of_width ps.ps_width in
              if a >= ps.ps_addr && a < ps.ps_addr + sb then
                match !best with
                | Some prev when prev.ps_lsid >= ps.ps_lsid -> ()
                | _ -> best := Some ps
            end)
          !stores;
        match !best with
        | Some ps ->
          let data = match ps.ps_data with Val v -> v | Nul -> assert false in
          let raw = (match data with Ty.Vi i -> i | Ty.Vf f -> Int64.bits_of_float f) in
          Int64.to_int (Int64.logand (Int64.shift_right_logical raw (8 * (a - ps.ps_addr))) 0xFFL)
        | None -> Int64.to_int (Image.load_u image Ty.W1 a)
      in
      let raw = ref 0L in
      for k = bytes - 1 downto 0 do
        raw := Int64.logor (Int64.shift_left !raw 8) (Int64.of_int (byte k))
      done;
      match ty with
      | Ty.I64 -> Ty.Vi (Semantics.zext width !raw)
      | Ty.F64 -> Ty.Vf (Int64.float_of_bits !raw)
    end
  in
  (* [enc] is a pre-encoded target (see {!xstatic}). *)
  let deliver src tok enc =
    if enc < 0 then begin
      let w = -enc - 1 in
      stats.opn_et_rt <- stats.opn_et_rt + 1;
      match tok with
      | Val v -> write_results := (w, v) :: !write_results
      | Nul -> raise (Stuck (b.label, "null token delivered to a write slot"))
    end
    else begin
      let i = enc lsr 2 and s = enc land 3 in
      if src < 0 then stats.opn_rt_et <- stats.opn_rt_et + 1
      else if xs.xs_is_load.(src) then stats.opn_dt_et <- stats.opn_dt_et + 1
      else stats.opn_et_et <- stats.opn_et_et + 1;
      (if s = 0 then begin
         if got.(i) land g_op0 <> 0 then
           raise (Stuck (b.label, Printf.sprintf "I%d.op0 double delivery" i));
         got.(i) <- got.(i) lor g_op0;
         tok0.(i) <- tok;
         src0.(i) <- src
       end
       else if s = 1 then begin
         if got.(i) land g_op1 <> 0 then
           raise (Stuck (b.label, Printf.sprintf "I%d.op1 double delivery" i));
         got.(i) <- got.(i) lor g_op1;
         tok1.(i) <- tok;
         src1.(i) <- src
       end
       else begin
         if got.(i) land g_pred <> 0 then
           raise (Stuck (b.label, Printf.sprintf "I%d.pred double delivery" i));
         got.(i) <- got.(i) lor g_pred;
         tokp.(i) <- tok;
         srcp.(i) <- src
       end);
      ring_push xc i
    end
  in
  (* deliver to every target of inst [i], in program target order *)
  let deliver_all i tok =
    let stop = Array.unsafe_get xs.xs_toff (i + 1) in
    for k = Array.unsafe_get xs.xs_toff i to stop - 1 do
      deliver i tok (Array.unsafe_get xs.xs_tenc k)
    done
  in
  (* predicate check: 0 = not yet decidable, 1 = fire, 2 = squash *)
  let pred_ok i (ins : Isa.inst) =
    match ins.pred with
    | Isa.Unpred -> 1
    | Isa.On_true _ ->
      if got.(i) land g_pred = 0 then 0
      else (
        match tokp.(i) with
        | Val v -> if Ty.truthy v then 1 else 2
        | Nul -> raise (Stuck (b.label, "null predicate")))
    | Isa.On_false _ ->
      if got.(i) land g_pred = 0 then 0
      else (
        match tokp.(i) with
        | Val v -> if Ty.truthy v then 2 else 1
        | Nul -> raise (Stuck (b.label, "null predicate")))
  in
  let rec mem_int i l =
    match l with [] -> false | x :: tl -> x = i || mem_int i tl
  in
  let try_fire i =
    let ins = b.insts.(i) in
    if fired.(i) then ()
    else
      let arity = Array.unsafe_get xs.xs_arity i in
      let have_ops =
        (arity < 1 || got.(i) land g_op0 <> 0)
        && (arity < 2 || got.(i) land g_op1 <> 0)
      in
      match pred_ok i ins with
      | 0 -> ()
      | 2 -> () (* squashed: counted as fetched-not-executed *)
      | _ ->
        if not have_ops then ()
        else begin
          (* loads must wait for all lower-LSID stores *)
          let defer =
            match ins.op with
            | Isa.Load (_, _, lsid) -> not (lower_stores_done lsid)
            | _ -> false
          in
          if defer then begin
            if not (mem_int i !pending_loads) then
              pending_loads := i :: !pending_loads
          end
          else begin
            fired.(i) <- true;
            decr fuel;
            if !fuel <= 0 then raise (Stuck (b.label, "out of fuel"));
            (match ins.op with
            | Isa.Bin op ->
              let a = tok0.(i) in
              let b2 =
                match ins.imm with
                | Some v -> Val (Ty.Vi v)
                | None -> tok1.(i)
              in
              (match (a, b2) with
              | Val va, Val vb -> value.(i) <- Val (Semantics.binop op va vb)
              | _ -> raise (Stuck (b.label, "null operand in ALU op")));
              if is_flop ins.op then stats.flops <- stats.flops + 1;
              deliver_all i value.(i)
            | Isa.Un op ->
              (match tok0.(i) with
              | Val v -> value.(i) <- Val (Semantics.unop op v)
              | Nul -> raise (Stuck (b.label, "null operand in ALU op")));
              deliver_all i value.(i)
            | Isa.Geni v ->
              value.(i) <- Val (Ty.Vi v);
              deliver_all i value.(i)
            | Isa.Genf v ->
              value.(i) <- Val (Ty.Vf v);
              deliver_all i value.(i)
            | Isa.Mov ->
              value.(i) <- tok0.(i);
              deliver_all i value.(i)
            | Isa.Null ->
              value.(i) <- Nul;
              deliver_all i value.(i)
            | Isa.Load (ty, w, lsid) ->
              stats.opn_et_dt <- stats.opn_et_dt + 1;
              let addr =
                Int64.to_int (token_int b.label tok0.(i))
                + (match ins.imm with Some v -> Int64.to_int v | None -> 0)
              in
              let v = load_value ty w lsid addr in
              value.(i) <- Val v;
              deliver_all i value.(i)
            | Isa.Store (w, lsid) ->
              stats.opn_et_dt <- stats.opn_et_dt + 1;
              (* the immediate on a store is an address displacement, not an
                 operand substitute: data always arrives on op1 *)
              let a = tok0.(i) and d = tok1.(i) in
              let nullified =
                (match a with Nul -> true | Val _ -> false)
                || (match d with Nul -> true | Val _ -> false)
              in
              let addr =
                if nullified then 0
                else
                  Int64.to_int (token_int b.label a)
                  + (match ins.imm with Some v -> Int64.to_int v | None -> 0)
              in
              stores :=
                { ps_inst = i; ps_lsid = lsid; ps_width = w; ps_addr = addr;
                  ps_data = (if nullified then Nul else d) }
                :: !stores;
              xc.store_cnt.(lsid) <- xc.store_cnt.(lsid) + 1;
              incr stores_done;
              (* a completed store may unblock deferred loads *)
              let retry = !pending_loads in
              pending_loads := [];
              List.iter (fun j -> ring_push xc j) retry
            | Isa.Branch dest ->
              stats.opn_et_gt <- stats.opn_et_gt + 1;
              (match !exit_fired with
              | Some _ -> raise (Stuck (b.label, "two branches fired"))
              | None -> exit_fired := Some (i, dest)))
          end
        end
  in
  (* inject register reads *)
  for r = 0 to Array.length b.reads - 1 do
    let tok = Val regs.(b.reads.(r).Block.rreg) in
    for k = xs.xs_roff.(r) to xs.xs_roff.(r + 1) - 1 do
      deliver (-1) tok (Array.unsafe_get xs.xs_renc k)
    done
  done;
  (* zero-operand instructions are ready immediately *)
  Array.iter (fun i -> ring_push xc i) xs.xs_zero_ready;
  (* dataflow loop *)
  let rec drain () =
    if xc.rlen > 0 then begin
      let i = ring_pop xc in
      try_fire i;
      drain ()
    end
    else if (match !pending_loads with [] -> false | _ -> true) then begin
      (* deferred loads whose guard may now pass *)
      let ls = !pending_loads in
      pending_loads := [];
      let before = List.length ls in
      List.iter (fun j -> ring_push xc j) ls;
      let rec step () =
        if xc.rlen > 0 then begin
          let i = ring_pop xc in
          try_fire i;
          step ()
        end
      in
      step ();
      if List.length !pending_loads >= before && xc.rlen = 0 then
        raise (Stuck (b.label, "loads deadlocked on incomplete stores"))
      else drain ()
    end
  in
  drain ();
  (* completeness checks *)
  let exit_i, exit_dest =
    match !exit_fired with
    | None -> raise (Stuck (b.label, "no branch fired"))
    | Some e -> e
  in
  if !stores_done <> xs.xs_store_sites then
    raise (Stuck (b.label, Printf.sprintf "only %d/%d stores completed" !stores_done xs.xs_store_sites));
  let committed_writes = !write_results in
  let declared = Array.length b.writes in
  let got_writes = List.sort_uniq Int.compare (List.map fst committed_writes) in
  if List.length got_writes <> declared then
    raise (Stuck (b.label, Printf.sprintf "only %d/%d writes completed" (List.length got_writes) declared));
  if List.length committed_writes <> declared then
    raise (Stuck (b.label, "a write slot received two values"));
  (* commit stores in LSID order *)
  let sorted_stores =
    List.sort (fun a b2 -> Int.compare a.ps_lsid b2.ps_lsid) !stores
  in
  List.iter
    (fun ps ->
      match ps.ps_data with
      | Nul -> ()
      | Val v -> Image.store image ps.ps_width ps.ps_addr v)
    sorted_stores;
  (* usefulness: reverse reachability from outputs over dynamic edges *)
  let useful = Array.make n false in
  let ustack = xc.ustack in
  let sp = ref 0 in
  let push i =
    if i >= 0 && not useful.(i) then begin
      useful.(i) <- true;
      ustack.(!sp) <- i;
      incr sp
    end
  in
  push exit_i;
  (* write producers: any fired instruction with a To_write target *)
  for i = 0 to n - 1 do
    if fired.(i) && xs.xs_write_producer.(i) then push i
  done;
  List.iter (fun ps -> push ps.ps_inst) !stores;
  while !sp > 0 do
    decr sp;
    let i = ustack.(!sp) in
    push src0.(i);
    push src1.(i);
    push srcp.(i)
  done;
  (* fold into stats *)
  stats.blocks <- stats.blocks + 1;
  stats.fetched <- stats.fetched + n;
  stats.reads_fetched <- stats.reads_fetched + Array.length b.reads;
  stats.writes_committed <- stats.writes_committed + declared;
  let mem_events = ref [] in
  for i = 0 to n - 1 do
    if fired.(i) then begin
      stats.executed <- stats.executed + 1;
      let cls = Array.unsafe_get xs.xs_class i in
      (match cls with
      | Isa.Karith -> stats.k_arith <- stats.k_arith + 1
      | Isa.Kmemory -> stats.k_memory <- stats.k_memory + 1
      | Isa.Kcontrol -> stats.k_control <- stats.k_control + 1
      | Isa.Ktest -> stats.k_test <- stats.k_test + 1
      | Isa.Kmove -> stats.k_move <- stats.k_move + 1);
      if not useful.(i) then stats.executed_not_used <- stats.executed_not_used + 1
      else (
        match cls with
        | Isa.Kmove -> ()
        | _ -> stats.useful <- stats.useful + 1);
      match b.insts.(i).op with
      | Isa.Load (_, w, lsid) ->
        stats.loads_executed <- stats.loads_executed + 1;
        let ins = b.insts.(i) in
        let addr =
          Int64.to_int (token_int b.label tok0.(i))
          + (match ins.imm with Some v -> Int64.to_int v | None -> 0)
        in
        mem_events :=
          { ev_inst = i; ev_lsid = lsid; ev_is_load = true; ev_addr = addr;
            ev_width = w; ev_null = false }
          :: !mem_events
      | _ -> ()
    end
    else stats.not_executed <- stats.not_executed + 1
  done;
  List.iter
    (fun ps ->
      let nul = match ps.ps_data with Nul -> true | Val _ -> false in
      if not nul then stats.stores_committed <- stats.stores_committed + 1;
      mem_events :=
        { ev_inst = ps.ps_inst; ev_lsid = ps.ps_lsid; ev_is_load = false;
          ev_addr = ps.ps_addr; ev_width = ps.ps_width; ev_null = nul }
        :: !mem_events)
    !stores;
  let mem_events =
    List.sort (fun a b2 -> Int.compare a.ev_lsid b2.ev_lsid) !mem_events
  in
  ( { iblock = b; fired; useful; exit_inst = exit_i; exit_dest; mem_events },
    committed_writes )

(* ------------------------------------------------------------------ *)
(* Program execution                                                   *)
(* ------------------------------------------------------------------ *)

(* Architectural state between two block instances: everything [run]'s
   driver loop carries from one block to the next, minus the memory
   image (the caller snapshots that separately — it is the caller's
   value).  Captured at a block boundary; resuming replays the rest of
   the program exactly. *)
type snapshot = {
  sn_label : string;                        (* next block to execute *)
  sn_regs : Ty.value array;
  sn_stack : (Ty.value array * string) list;(* saved regs + return label *)
  sn_blocks : int;                          (* blocks committed at capture *)
  sn_stats : stats;                         (* functional stats at capture *)
}

type outcome = Finished of result | Snapshot of snapshot

let copy_stats (s : stats) = { s with blocks = s.blocks }

let copy_snapshot sn =
  {
    sn with
    sn_regs = Array.copy sn.sn_regs;
    sn_stack = List.map (fun (r, l) -> (Array.copy r, l)) sn.sn_stack;
    sn_stats = copy_stats sn.sn_stats;
  }

let run_gen ?(fuel = 400_000_000) ?on_instance ?debug_regs ?resume
    ?capture_after (p : Block.program) (image : Image.t) ~entry ~args =
  let stats =
    match resume with
    | None -> empty_stats ()
    | Some sn -> copy_stats sn.sn_stats
  in
  let fuel = ref fuel in
  let regs = Array.make Isa.num_regs (Ty.Vi 0L) in
  (match resume with
  | None ->
    List.iteri
      (fun i v ->
        match List.nth_opt abi_arg_regs i with
        | Some r -> regs.(r) <- v
        | None -> invalid_arg "Exec.run: too many arguments")
      args
  | Some sn -> Array.blit sn.sn_regs 0 regs 0 (Array.length regs));
  (* one table holding both the block and its static facts: a single
     lookup per dynamic block instance *)
  let blocks = Hashtbl.create 256 in
  List.iter
    (fun (f : Block.func) ->
      List.iter
        (fun (b : Block.t) -> Hashtbl.replace blocks b.label (b, build_xstatic b))
        f.blocks)
    p.funcs;
  let xc = make_xscratch () in
  (* call stack: saved register file + return label *)
  let stack : (Ty.value array * string) list ref =
    ref
      (match resume with
      | None -> []
      | Some sn -> List.map (fun (r, l) -> (Array.copy r, l)) sn.sn_stack)
  in
  let current =
    ref
      (Some
         (match resume with
         | None -> (Block.find_func p entry).entry
         | Some sn -> sn.sn_label))
  in
  let finished = ref None in
  let captured = ref None in
  let committed = ref 0 in
  while
    (match !finished with None -> true | Some _ -> false)
    && match !captured with None -> true | Some _ -> false
  do
    match !current with
    | None -> assert false
    | Some label ->
      let b, xs =
        match Hashtbl.find_opt blocks label with
        | Some bx -> bx
        | None -> raise (Stuck (label, "unknown block"))
      in
      let instance, writes = exec_block ~stats ~fuel ~xs ~xc b regs image in
      (* commit register writes *)
      List.iter (fun (w, v) -> regs.(b.writes.(w).wreg) <- v) writes;
      Option.iter (fun f -> f instance) on_instance;
      Option.iter (fun f -> f label regs) debug_regs;
      (match instance.exit_dest with
      | Isa.Xjump l -> current := Some l
      | Isa.Xcall (callee, retl) ->
        let f = Block.find_func p callee in
        stack := (Array.copy regs, retl) :: !stack;
        current := Some f.entry
      | Isa.Xret -> (
        match !stack with
        | [] -> finished := Some regs.(abi_ret_reg)
        | (saved, retl) :: rest ->
          let ret_v = regs.(abi_ret_reg) in
          Array.blit saved 0 regs 0 (Array.length regs);
          regs.(abi_ret_reg) <- ret_v;
          stack := rest;
          current := Some retl));
      incr committed;
      (* snapshot at a block boundary: the next label plus the register
         file and call stack it will start from.  Taken after the exit
         dispatch so the stack is consistent with [sn_label]. *)
      match (capture_after, !finished, !current) with
      | Some n, None, Some next when !committed >= n ->
        captured :=
          Some
            {
              sn_label = next;
              sn_regs = Array.copy regs;
              sn_stack = List.map (fun (r, l) -> (Array.copy r, l)) !stack;
              sn_blocks = stats.blocks;
              sn_stats = copy_stats stats;
            }
      | _ -> ()
  done;
  match !finished with
  | Some ret -> Finished { ret = Some ret; stats }
  | None -> (
    match !captured with
    | Some sn -> Snapshot sn
    | None -> assert false)

let run ?fuel ?on_instance ?debug_regs ?resume (p : Block.program)
    (image : Image.t) ~entry ~args =
  match run_gen ?fuel ?on_instance ?debug_regs ?resume p image ~entry ~args with
  | Finished r -> r
  | Snapshot _ -> assert false

let capture ?fuel ?on_instance ~after (p : Block.program) (image : Image.t)
    ~entry ~args =
  match run_gen ?fuel ?on_instance ~capture_after:after p image ~entry ~args with
  | Finished r -> Finished r
  | Snapshot sn -> Snapshot sn
