(** Functional (architectural) executor for EDGE programs.

    Runs a {!Block.program} block by block with exact dataflow-firing
    semantics: reads inject register values, instructions fire when their
    operands (and matching predicate) arrive, loads wait for all
    lower-LSID stores, and a block commits once every write slot, every
    LSID and exactly one branch have produced outputs — the block-atomic
    contract of §2.

    Besides the architectural result, the executor produces the dynamic
    statistics behind the paper's ISA evaluation (Figs 3–5): per-class
    fired counts, fetched-but-not-executed and executed-but-not-used
    instructions, read/write/store/load counts, and operand-delivery
    traffic split by tile class.  It can also stream a per-block-instance
    trace into the cycle-level simulator. *)

type token = Val of Trips_tir.Ty.value | Nul

type mem_event = {
  ev_inst : int;                 (* instruction index in the block *)
  ev_lsid : int;
  ev_is_load : bool;
  ev_addr : int;
  ev_width : Trips_tir.Ty.width;
  ev_null : bool;                (* nullified store: completes, no memory *)
}

type instance = {
  iblock : Block.t;
  fired : bool array;            (* instruction fired *)
  useful : bool array;           (* fired and on a path to a block output *)
  exit_inst : int;               (* index of the branch that fired *)
  exit_dest : Isa.exit_dest;
  mem_events : mem_event list;   (* in LSID order *)
}

type stats = {
  mutable blocks : int;              (* block instances committed *)
  mutable fetched : int;             (* block size summed over instances *)
  mutable executed : int;            (* instructions fired *)
  mutable not_executed : int;        (* fetched but never fired *)
  mutable executed_not_used : int;   (* fired, off every output path *)
  mutable useful : int;              (* fired, used, not a move/null *)
  mutable k_arith : int;
  mutable k_memory : int;
  mutable k_control : int;
  mutable k_test : int;
  mutable k_move : int;              (* fired moves + nulls *)
  mutable reads_fetched : int;
  mutable writes_committed : int;
  mutable stores_committed : int;    (* non-null stores *)
  mutable loads_executed : int;
  mutable opn_et_et : int;           (* operand deliveries inst->inst *)
  mutable opn_rt_et : int;           (* read injections *)
  mutable opn_et_rt : int;           (* write deliveries *)
  mutable opn_et_dt : int;           (* memory requests *)
  mutable opn_dt_et : int;           (* load data returns *)
  mutable opn_et_gt : int;           (* branch resolutions *)
  mutable flops : int;               (* floating-point operations fired *)
}

val empty_stats : unit -> stats

type result = {
  ret : Trips_tir.Ty.value option;
  stats : stats;
}

exception Stuck of string * string
(** Block deadlocked or finished without all outputs: (label, reason). *)

type snapshot = {
  sn_label : string;                         (* next block to execute *)
  sn_regs : Trips_tir.Ty.value array;
  sn_stack : (Trips_tir.Ty.value array * string) list;
  sn_blocks : int;                           (* blocks committed at capture *)
  sn_stats : stats;                          (* functional stats at capture *)
}
(** Architectural state at a block boundary: the next block label plus
    the register file and call stack it starts from.  The memory image is
    not included — snapshot it alongside with {!Trips_tir.Image.copy}.
    Resuming from a snapshot (against a matching image) replays the rest
    of the program exactly. *)

type outcome = Finished of result | Snapshot of snapshot

val copy_snapshot : snapshot -> snapshot
(** Deep copy; lets one snapshot be resumed more than once even though
    resuming mutates nothing (defensive, the arrays inside are owned). *)

val run :
  ?fuel:int ->
  ?on_instance:(instance -> unit) ->
  ?debug_regs:(string -> Trips_tir.Ty.value array -> unit) ->
  ?resume:snapshot ->
  Block.program ->
  Trips_tir.Image.t ->
  entry:string ->
  args:Trips_tir.Ty.value list ->
  result
(** [run program image ~entry ~args] executes function [entry].  Arguments
    are placed in the argument registers of the EDGE ABI ({!abi_arg_regs});
    the result is taken from {!abi_ret_reg}.  [fuel] bounds total fired
    instructions (default 400 million).  With [~resume] the driver starts
    from the snapshot's label/registers/call stack instead of [entry]
    ([entry] and [args] are then ignored); the image must be the one
    captured alongside the snapshot. *)

val capture :
  ?fuel:int ->
  ?on_instance:(instance -> unit) ->
  after:int ->
  Block.program ->
  Trips_tir.Image.t ->
  entry:string ->
  args:Trips_tir.Ty.value list ->
  outcome
(** Like {!run}, but stops at the first block boundary once [after] block
    instances have committed and returns the [Snapshot] there; programs
    that finish earlier return [Finished].  The passed image is mutated
    up to the capture point, so [Image.copy] it at capture time to pair
    with the snapshot. *)

val abi_ret_reg : int
val abi_arg_regs : int list
