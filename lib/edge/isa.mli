(** The EDGE instruction set of the TRIPS prototype.

    Programs are sequences of {e blocks} executed atomically (§2 of the
    paper): a block is fetched, executed in dataflow order, and committed as
    a unit.  Instructions inside a block carry their consumers ({e targets})
    instead of register names; inter-block communication goes through up to
    32 register reads and 32 register writes in the block header, and memory
    through load/store instructions identified by sequence numbers (LSIDs).

    Encoding limits mirror the prototype: at most {!max_insts} instructions,
    {!max_reads}/{!max_writes} header slots, {!max_lsids} memory operations
    and {!max_exits} branches per block; a 32-bit instruction has room for at
    most two targets, so wider fanout needs [mov] trees. *)

(* Prototype limits: 128 instructions, 32 reads, 32 writes, 32 LSIDs,
   8 exits, 128 architectural registers in 4 banks. *)
val max_insts : int
val max_reads : int
val max_writes : int
val max_lsids : int
val max_exits : int
val num_regs : int
val reg_banks : int

(* Execution-tile mesh geometry (single source of truth for the scheduler,
   the default placement and the block validator): a 4x4 ET grid with 8
   reservation-station slots per tile per block. *)
val et_grid : int
val num_ets : int
val et_slots : int

(** Physical (row, col) positions on the 5x5 OPN mesh: row 0 holds the
    global tile and the four register tiles, column 0 the four data tiles,
    the inner 4x4 the execution tiles.  Single source of truth shared by
    the scheduler ({!Trips_compiler.Schedule}), the cycle-level simulator
    and the static timing analyzer. *)
val tile_position : int -> int * int
val rt_position : int -> int * int
val dt_position : int -> int * int
val gt_position : int * int
val num_dt_banks : int

val mesh_dist : int * int -> int * int -> int
(** Manhattan distance between two mesh positions = uncontended OPN hops. *)

type slot = Op0 | Op1 | OpPred
(** Operand ports of a consumer instruction. *)

type target =
  | To_inst of int * slot   (* deliver to instruction [i]'s port *)
  | To_write of int         (* deliver to write slot [w] *)

type predication =
  | Unpred
  | On_true of int          (* fire iff instruction [i] delivers nonzero *)
  | On_false of int         (* fire iff instruction [i] delivers zero *)
(** The producer index is recorded for validation/placement; at run time the
    predicate arrives on the [OpPred] port like any operand. *)

type exit_dest =
  | Xjump of string                 (* next block label *)
  | Xcall of string * string        (* callee entry label, return block label *)
  | Xret

type opcode =
  | Bin of Trips_tir.Ast.binop      (* ALU and FPU operations, incl. tests *)
  | Un of Trips_tir.Ast.unop
  | Geni of int64                   (* integer constant generation *)
  | Genf of float                   (* float constant generation *)
  | Mov                             (* operand fanout / predicate merge *)
  | Null                            (* produce a null token *)
  | Load of Trips_tir.Ty.t * Trips_tir.Ty.width * int   (* lsid *)
  | Store of Trips_tir.Ty.width * int                   (* lsid *)
  | Branch of exit_dest

type inst = {
  op : opcode;
  pred : predication;
  imm : int64 option;
  (* immediate second operand (Bin) or address displacement (memory ops) *)
  targets : target list;            (* at most two *)
}

(** Instruction classes used by the paper's composition figures (Fig 3). *)
type klass = Karith | Kmemory | Kcontrol | Ktest | Kmove

val classify : opcode -> klass
val is_test : Trips_tir.Ast.binop -> bool
(** Comparison operators are the ISA's test instructions. *)

val operand_arity : inst -> int
(** Dataflow operands the instruction must receive (0, 1 or 2), excluding
    the predicate. *)

val latency : opcode -> int
(** Execution latency in cycles used by the cycle-level model (single-cycle
    integer ops, pipelined multi-cycle multiply/divide/FP, cache-hit loads
    get their latency from the memory model instead). *)

val slot_name : slot -> string
val opcode_name : opcode -> string
val pp_inst : Format.formatter -> inst -> unit
val pp_target : Format.formatter -> target -> unit
