type read = {
  rreg : int;
  rtargets : Isa.target list;
}

type write = { wreg : int }

type t = {
  label : string;
  reads : read array;
  writes : write array;
  insts : Isa.inst array;
  mutable placement : int array;
}

type func = {
  fname : string;
  entry : string;
  blocks : t list;
}

type program = {
  globals : Trips_tir.Ast.global list;
  funcs : func list;
}

let find_func p name = List.find (fun f -> f.fname = name) p.funcs
let find_block f label = List.find (fun b -> b.label = label) f.blocks

let block_of_label p label =
  let rec search = function
    | [] -> raise Not_found
    | f :: rest -> (
      match List.find_opt (fun b -> b.label = label) f.blocks with
      | Some b -> b
      | None -> search rest)
  in
  search p.funcs

let exits b =
  let out = ref [] in
  Array.iteri
    (fun i (ins : Isa.inst) ->
      match ins.op with Isa.Branch d -> out := (i, d) :: !out | _ -> ())
    b.insts;
  List.rev !out

let num_lsids b =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun (ins : Isa.inst) ->
      match ins.op with
      | Isa.Load (_, _, lsid) | Isa.Store (_, lsid) -> Hashtbl.replace seen lsid ()
      | _ -> ())
    b.insts;
  Hashtbl.length seen

let default_placement b =
  b.placement <- Array.init (Array.length b.insts) (fun i -> i mod Isa.num_ets)

exception Invalid of string * string

let fail b reason = raise (Invalid (b.label, reason))

let validate b =
  let n = Array.length b.insts in
  if n > Isa.max_insts then fail b (Printf.sprintf "too many instructions (%d)" n);
  if Array.length b.reads > Isa.max_reads then fail b "too many reads";
  if Array.length b.writes > Isa.max_writes then fail b "too many writes";
  if num_lsids b > Isa.max_lsids then fail b "too many LSIDs";
  Array.iteri
    (fun i (ins : Isa.inst) ->
      match ins.op with
      | Isa.Load (_, _, lsid) | Isa.Store (_, lsid) ->
        if lsid < 0 || lsid >= Isa.max_lsids then
          fail b (Printf.sprintf "I%d LSID %d out of range" i lsid)
      | _ -> ())
    b.insts;
  let ex = exits b in
  if ex = [] then fail b "no exit branch";
  if List.length ex > Isa.max_exits then fail b "too many exits";
  (* per-slot producer bookkeeping *)
  let producers = Array.make n [] in           (* port lists per inst *)
  let write_producers = Array.make (Array.length b.writes) 0 in
  (* unpredicated producers per port: two of them on one port is a
     guaranteed double delivery at run time, only producers in opposite
     predicate arms may legally share a port *)
  let unpred_producers : (int * Isa.slot, int) Hashtbl.t = Hashtbl.create 16 in
  let src_unpredicated src =
    src < 0 (* read slots always deliver *)
    || (match b.insts.(src).Isa.pred with Isa.Unpred -> true | _ -> false)
  in
  let record src = function
    | Isa.To_inst (i, s) ->
      if i < 0 || i >= n then fail b (Printf.sprintf "target I%d out of range" i);
      if i = src then fail b (Printf.sprintf "I%d targets itself" i);
      producers.(i) <- s :: producers.(i);
      if src_unpredicated src then begin
        let k = (i, s) in
        let c = 1 + Option.value ~default:0 (Hashtbl.find_opt unpred_producers k) in
        if c > 1 then
          fail b
            (Printf.sprintf "I%d.%s has %d unpredicated producers" i
               (Isa.slot_name s) c);
        Hashtbl.replace unpred_producers k c
      end
    | Isa.To_write w ->
      if w < 0 || w >= Array.length b.writes then
        fail b (Printf.sprintf "write target W%d out of range" w);
      write_producers.(w) <- write_producers.(w) + 1
  in
  Array.iteri
    (fun idx (ins : Isa.inst) ->
      if List.length ins.targets > 2 then fail b (Printf.sprintf "I%d has >2 targets" idx);
      (match ins.op with
      | Isa.Branch _ when ins.targets <> [] -> fail b "branch with targets"
      | Isa.Store _ when ins.targets <> [] -> fail b "store with targets"
      | _ -> ());
      List.iter (record idx) ins.targets)
    b.insts;
  Array.iteri
    (fun _ (r : read) ->
      if r.rreg < 0 || r.rreg >= Isa.num_regs then fail b "read register out of range";
      if List.length r.rtargets > 2 then fail b "read with >2 targets";
      List.iter (record (-1)) r.rtargets)
    b.reads;
  Array.iter
    (fun (w : write) ->
      if w.wreg < 0 || w.wreg >= Isa.num_regs then fail b "write register out of range")
    b.writes;
  (* every declared write slot must have at least one producer *)
  Array.iteri
    (fun w count ->
      if count = 0 then fail b (Printf.sprintf "write slot W%d has no producer" w))
    write_producers;
  (* operand ports must have producers matching arity; predicated
     instructions need a predicate producer *)
  Array.iteri
    (fun idx (ins : Isa.inst) ->
      let ports = producers.(idx) in
      let has s = List.mem s ports in
      let arity = Isa.operand_arity ins in
      if arity >= 1 && not (has Isa.Op0) then
        fail b (Printf.sprintf "I%d missing op0 producer" idx);
      if arity >= 2 && not (has Isa.Op1) then
        fail b (Printf.sprintf "I%d missing op1 producer" idx);
      if arity < 2 && has Isa.Op1 then
        fail b (Printf.sprintf "I%d has op1 producer but arity %d" idx arity);
      if arity < 1 && has Isa.Op0 then
        fail b (Printf.sprintf "I%d has op0 producer but arity %d" idx arity);
      match ins.pred with
      | Isa.Unpred ->
        if has Isa.OpPred then fail b (Printf.sprintf "unpredicated I%d receives predicate" idx)
      | Isa.On_true p | Isa.On_false p ->
        if not (has Isa.OpPred) then fail b (Printf.sprintf "I%d missing predicate producer" idx);
        if p < 0 || p >= n then fail b (Printf.sprintf "I%d predicate producer out of range" idx))
    b.insts;
  (* placement sanity *)
  if Array.length b.placement <> n then fail b "placement length mismatch";
  Array.iter
    (fun et ->
      if et < 0 || et >= Isa.num_ets then fail b "placement tile out of range")
    b.placement

let validate_program p =
  let labels = Hashtbl.create 64 in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          if Hashtbl.mem labels b.label then
            raise (Invalid (b.label, "duplicate block label"));
          Hashtbl.replace labels b.label ())
        f.blocks)
    p.funcs;
  List.iter
    (fun f ->
      if not (List.exists (fun b -> b.label = f.entry) f.blocks) then
        raise (Invalid (f.entry, "missing entry block for " ^ f.fname));
      List.iter
        (fun b ->
          validate b;
          List.iter
            (fun (_, dest) ->
              match (dest : Isa.exit_dest) with
              | Isa.Xjump l ->
                if not (Hashtbl.mem labels l) then
                  raise (Invalid (b.label, "exit to unknown block " ^ l))
              | Isa.Xcall (callee, retl) ->
                if not (List.exists (fun f -> f.fname = callee) p.funcs) then
                  raise (Invalid (b.label, "call to unknown function " ^ callee));
                if not (Hashtbl.mem labels retl) then
                  raise (Invalid (b.label, "return label unknown: " ^ retl))
              | Isa.Xret -> ())
            (exits b))
        f.blocks)
    p.funcs

let pp ppf b =
  Format.fprintf ppf "@[<v 2>block %s (%d insts, %d reads, %d writes):@," b.label
    (Array.length b.insts) (Array.length b.reads) (Array.length b.writes);
  Array.iteri
    (fun i (r : read) ->
      Format.fprintf ppf "R%d: read r%d -> %a@," i r.rreg
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Isa.pp_target)
        r.rtargets)
    b.reads;
  Array.iteri (fun i ins -> Format.fprintf ppf "I%d: %a@," i Isa.pp_inst ins) b.insts;
  Array.iteri (fun i (w : write) -> Format.fprintf ppf "W%d: write r%d@," i w.wreg) b.writes;
  Format.fprintf ppf "@]"

let pp_program ppf p =
  List.iter
    (fun f ->
      Format.fprintf ppf "function %s (entry %s)@." f.fname f.entry;
      List.iter (fun b -> Format.fprintf ppf "%a@." pp b) f.blocks)
    p.funcs

let size_stats b =
  (Array.length b.insts, Array.length b.reads, Array.length b.writes, List.length (exits b))
