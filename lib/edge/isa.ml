module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty

let max_insts = 128
let max_reads = 32
let max_writes = 32
let max_lsids = 32
let max_exits = 8
let num_regs = 128
let reg_banks = 4

(* Execution-tile mesh geometry: a 4x4 ET grid, 8 reservation-station
   slots per ET per block (16 * 8 = the 128-instruction block limit).
   Shared by the scheduler, the default placement and the validator. *)
let et_grid = 4
let num_ets = et_grid * et_grid
let et_slots = 8

(* Physical positions on the 5x5 OPN mesh: (0,0) = GT, (0,1..4) = RT0..3,
   (1..4,0) = DT0..3, (1..4,1..4) = the ET grid.  One source of truth for
   the scheduler's anchors, the cycle-level simulator's routing and the
   static timing analyzer's hop costs. *)
let tile_position et = ((et / et_grid) + 1, (et mod et_grid) + 1)
let rt_position reg = (0, (reg / (num_regs / reg_banks)) + 1)
let dt_position bank = ((bank land 3) + 1, 0)
let gt_position = (0, 0)
let num_dt_banks = 4

let mesh_dist (r1, c1) (r2, c2) = abs (r1 - r2) + abs (c1 - c2)

type slot = Op0 | Op1 | OpPred

type target =
  | To_inst of int * slot
  | To_write of int

type predication =
  | Unpred
  | On_true of int
  | On_false of int

type exit_dest =
  | Xjump of string
  | Xcall of string * string
  | Xret

type opcode =
  | Bin of Ast.binop
  | Un of Ast.unop
  | Geni of int64
  | Genf of float
  | Mov
  | Null
  | Load of Ty.t * Ty.width * int
  | Store of Ty.width * int
  | Branch of exit_dest

type inst = {
  op : opcode;
  pred : predication;
  imm : int64 option;
  targets : target list;
}

type klass = Karith | Kmemory | Kcontrol | Ktest | Kmove

let is_test (op : Ast.binop) =
  match op with
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Ult | Ast.Ule
  | Ast.Feq | Ast.Fne | Ast.Flt | Ast.Fle | Ast.Fgt | Ast.Fge ->
    true
  | _ -> false

let classify = function
  | Bin op -> if is_test op then Ktest else Karith
  | Un _ | Geni _ | Genf _ -> Karith
  | Mov | Null -> Kmove
  | Load _ | Store _ -> Kmemory
  | Branch _ -> Kcontrol

let operand_arity i =
  match i.op with
  | Bin _ -> ( match i.imm with None -> 2 | Some _ -> 1)
  | Un _ -> 1
  | Geni _ | Genf _ -> 0
  | Mov -> 1
  | Null -> 0
  | Load _ -> 1
  | Store _ -> 2
  | Branch _ -> 0

let latency = function
  | Bin op -> (
    match op with
    | Ast.Mul -> 3
    | Ast.Div | Ast.Rem -> 24
    | Ast.Fadd | Ast.Fsub -> 4
    | Ast.Fmul -> 4
    | Ast.Fdiv -> 24
    | _ -> 1)
  | Un op -> ( match op with Ast.Itof | Ast.Ftoi -> 4 | _ -> 1)
  | Geni _ | Genf _ | Mov | Null -> 1
  | Load _ -> 1 (* pipeline portion; cache latency added by the memory model *)
  | Store _ -> 1
  | Branch _ -> 1

let slot_name = function Op0 -> "op0" | Op1 -> "op1" | OpPred -> "p"

let pp_target ppf = function
  | To_inst (i, s) -> Format.fprintf ppf "I%d.%s" i (slot_name s)
  | To_write (w) -> Format.fprintf ppf "W%d" w

let opcode_name = function
  | Bin op -> (if is_test op then "t" else "") ^ Ast.binop_name op
  | Un op -> Ast.unop_name op
  | Geni v -> Printf.sprintf "geni %Ld" v
  | Genf v -> Printf.sprintf "genf %g" v
  | Mov -> "mov"
  | Null -> "null"
  | Load (t, w, lsid) ->
    Printf.sprintf "ld.%s.%d #%d" (Ty.to_string t) (Ty.bytes_of_width w) lsid
  | Store (w, lsid) -> Printf.sprintf "st.%d #%d" (Ty.bytes_of_width w) lsid
  | Branch (Xjump l) -> "bro " ^ l
  | Branch (Xcall (f, r)) -> Printf.sprintf "callo %s ret->%s" f r
  | Branch Xret -> "ret"

let pp_inst ppf i =
  let pp_pred ppf = function
    | Unpred -> ()
    | On_true p -> Format.fprintf ppf "<t I%d> " p
    | On_false p -> Format.fprintf ppf "<f I%d> " p
  in
  let pp_imm ppf = function
    | None -> ()
    | Some v -> Format.fprintf ppf " imm=%Ld" v
  in
  Format.fprintf ppf "%a%s%a -> %a" pp_pred i.pred (opcode_name i.op) pp_imm i.imm
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_target)
    i.targets
