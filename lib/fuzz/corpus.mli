(** Committed corpus of minimized failing programs.

    Entries are stored as JSON (via {!Trips_util.Json}) carrying the full
    AST — int64s as decimal strings, floats as their IEEE-754 bit
    patterns, so round-trips are exact — plus the failure metadata and a
    human-readable {!Trips_tir.Ast.pp} rendering.  [dune runtest] replays
    every entry under [test/corpus/]. *)

exception Bad of string

val jprogram : Trips_tir.Ast.program -> Trips_util.Json.t

val of_jprogram : Trips_util.Json.t -> Trips_tir.Ast.program
(** @raise Bad on malformed input. *)

type entry = {
  e_name : string;   (** file basename without [.json] *)
  e_seed : int;      (** generator seed the divergence came from *)
  e_check : string;  (** {!Oracle.failure} check kind *)
  e_config : string;
  e_detail : string;
  e_inject : string option;
      (** when set, the entry only fails with this injected compiler bug
          ({!Oracle.inject_of_string}); replay re-applies it *)
  e_program : Trips_tir.Ast.program;
}

val entry_to_json : entry -> Trips_util.Json.t

val entry_of_json : Trips_util.Json.t -> entry
(** @raise Bad on malformed input. *)

val save : string -> entry -> string
(** [save dir entry] writes [dir/<name>.json] (creating [dir] if needed)
    and returns the path. *)

val load : string -> (entry, string) result

val load_dir : string -> (string * (entry, string) result) list
(** All [*.json] entries under a directory, sorted by name. *)
