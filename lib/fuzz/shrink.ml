module Ast = Trips_tir.Ast

(* Candidate enumeration is purely structural and RNG-free, and the greedy
   loop always applies the first acceptable candidate, so shrinking is
   deterministic.  Every candidate is filtered through Typecheck.check and
   a strict size decrease before the (expensive) oracle re-run, so the
   published invariants — well-typedness preserved, size strictly
   decreasing — hold by construction. *)

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let rec drop n = function
  | l when n = 0 -> l
  | [] -> []
  | _ :: tl -> drop (n - 1) tl

let splice l i repl = take i l @ repl @ drop (i + 1) l

(* ddmin-style: remove aligned chunks of size n, n/2, ..., 1 (large first). *)
let chunk_removals (b : 'a list) : 'a list Seq.t =
  let n = List.length b in
  let rec szs s acc = if s < 1 then acc else szs (s / 2) (s :: acc) in
  let sizes = if n = 0 then [] else List.rev (szs n []) in
  List.to_seq sizes
  |> Seq.concat_map (fun size ->
         let rec starts k () =
           if k >= n then Seq.Nil
           else Seq.Cons (take k b @ drop (k + size) b, starts (k + size))
         in
         starts 0)

let subexprs (e : Ast.expr) =
  match e with
  | Int _ | Flt _ | Var _ | Glo _ -> []
  | Bin (_, a, b) -> [ a; b ]
  | Un (_, a) | Load (_, _, a) -> [ a ]
  | Call (_, args) -> args

let rec expr_rewrites (e : Ast.expr) : Ast.expr Seq.t =
  let whole =
    let consts =
      if Typecheck.size_expr e > 1 then [ Ast.Int 0L; Ast.Int 1L; Ast.Flt 0. ]
      else []
    in
    List.to_seq (subexprs e @ consts)
  in
  let inner =
    match e with
    | Ast.Bin (op, a, b) ->
      Seq.append
        (Seq.map (fun a' -> Ast.Bin (op, a', b)) (expr_rewrites a))
        (Seq.map (fun b' -> Ast.Bin (op, a, b')) (expr_rewrites b))
    | Ast.Un (op, a) -> Seq.map (fun a' -> Ast.Un (op, a')) (expr_rewrites a)
    | Ast.Load (t, w, a) ->
      Seq.map (fun a' -> Ast.Load (t, w, a')) (expr_rewrites a)
    | Ast.Call (f, args) ->
      List.to_seq (List.mapi (fun i a -> (i, a)) args)
      |> Seq.concat_map (fun (i, a) ->
             Seq.map
               (fun a' -> Ast.Call (f, splice args i [ a' ]))
               (expr_rewrites a))
    | _ -> Seq.empty
  in
  Seq.append whole inner

let rec stmt_rewrites (s : Ast.stmt) : Ast.stmt list Seq.t =
  match s with
  | Ast.Let (x, e) ->
    Seq.map (fun e' -> [ Ast.Let (x, e') ]) (expr_rewrites e)
  | Ast.Store (w, a, v) ->
    Seq.append
      (Seq.map (fun a' -> [ Ast.Store (w, a', v) ]) (expr_rewrites a))
      (Seq.map (fun v' -> [ Ast.Store (w, a, v') ]) (expr_rewrites v))
  | Ast.Expr e -> Seq.map (fun e' -> [ Ast.Expr e' ]) (expr_rewrites e)
  | Ast.Return (Some e) ->
    Seq.map (fun e' -> [ Ast.Return (Some e') ]) (expr_rewrites e)
  | Ast.Return None -> Seq.empty
  | Ast.If (c, t, e) ->
    Seq.append
      (List.to_seq [ t; e ]) (* unwrap to either branch *)
      (Seq.concat
         (List.to_seq
            [
              Seq.map (fun c' -> [ Ast.If (c', t, e) ]) (expr_rewrites c);
              Seq.map (fun t' -> [ Ast.If (c, t', e) ]) (body_rewrites t);
              Seq.map (fun e' -> [ Ast.If (c, t, e') ]) (body_rewrites e);
            ]))
  | Ast.While (c, b) ->
    Seq.cons b  (* unwrap: run the body once *)
      (Seq.append
         (Seq.map (fun c' -> [ Ast.While (c', b) ]) (expr_rewrites c))
         (Seq.map (fun b' -> [ Ast.While (c, b') ]) (body_rewrites b)))
  | Ast.For (x, lo, hi, step, b) ->
    Seq.cons
      (Ast.Let (x, lo) :: b)  (* unwrap: bind the loop var, run once *)
      (Seq.concat
         (List.to_seq
            [
              Seq.map (fun lo' -> [ Ast.For (x, lo', hi, step, b) ]) (expr_rewrites lo);
              Seq.map (fun hi' -> [ Ast.For (x, lo, hi', step, b) ]) (expr_rewrites hi);
              Seq.map (fun b' -> [ Ast.For (x, lo, hi, step, b') ]) (body_rewrites b);
            ]))

and body_rewrites (b : Ast.stmt list) : Ast.stmt list Seq.t =
  Seq.append (chunk_removals b)
    (List.to_seq (List.mapi (fun i s -> (i, s)) b)
    |> Seq.concat_map (fun (i, s) ->
           Seq.map (fun repl -> splice b i repl) (stmt_rewrites s)))

let candidates (p : Ast.program) : Ast.program Seq.t =
  let drop_funcs =
    List.to_seq p.funcs
    |> Seq.filter_map (fun (f : Ast.func) ->
           if f.fname = "main" then None
           else
             Some
               {
                 p with
                 funcs = List.filter (fun (g : Ast.func) -> g != f) p.funcs;
               })
  in
  let drop_globals =
    List.to_seq p.globals
    |> Seq.map (fun (g : Ast.global) ->
           { p with globals = List.filter (fun h -> h != g) p.globals })
  in
  let strip_inits =
    List.to_seq p.globals
    |> Seq.filter_map (fun (g : Ast.global) ->
           match g.init with
           | None -> None
           | Some _ ->
             Some
               {
                 p with
                 globals =
                   List.map
                     (fun (h : Ast.global) ->
                       if h == g then { h with init = None } else h)
                     p.globals;
               })
  in
  let body_edits =
    List.to_seq p.funcs
    |> Seq.concat_map (fun (f : Ast.func) ->
           Seq.map
             (fun body' ->
               {
                 p with
                 funcs =
                   List.map
                     (fun (g : Ast.func) ->
                       if g == f then { g with body = body' } else g)
                     p.funcs;
               })
             (body_rewrites f.body))
  in
  Seq.concat (List.to_seq [ drop_funcs; drop_globals; strip_inits; body_edits ])

type result = {
  sh_program : Ast.program;
  sh_size : int;
  sh_orig_size : int;
  sh_steps : int;  (* accepted rewrites *)
  sh_evals : int;  (* oracle evaluations spent *)
  sh_log : string list;  (* one line per accepted step, oldest first *)
}

(* Interpreter work of [p] (sum of operation counts), or None on trap /
   fuel exhaustion. *)
let interp_work ~fuel (p : Ast.program) : int option =
  match
    let img = Trips_tir.Image.build p.Ast.globals in
    Trips_tir.Interp.run_ast ~fuel p img "main" []
  with
  | r ->
    let c = r.Trips_tir.Interp.counts in
    Some
      Trips_tir.Interp.(c.ops + c.loads + c.stores + c.branches + c.calls)
  | exception _ -> None

let shrink ?(max_evals = 4000) (oracle : Oracle.t) (failure : Oracle.failure)
    (p0 : Ast.program) : result =
  let focused = Oracle.focus oracle failure in
  (* Fall back to the full oracle if focusing lost the failure. *)
  let t = if Oracle.fails_like focused failure p0 then focused else oracle in
  (* Candidate fuel tracks the current program's measured interpreter
     work, so a rewrite that breaks loop termination (e.g. a dropped
     decrement) is rejected in milliseconds instead of burning the whole
     fuel budget.  8x headroom covers the fuel/counts gap: fuel burns per
     AST node visited, counts per operation. *)
  let tune_fuel t p =
    match interp_work ~fuel:t.Oracle.fuel p with
    | Some w -> { t with Oracle.fuel = min t.Oracle.fuel ((8 * w) + 50_000) }
    | None -> t
  in
  let t = ref (tune_fuel t p0) in
  let evals = ref 0 and steps = ref 0 and log = ref [] in
  let orig_size = Typecheck.size_program p0 in
  let cur = ref p0 and cur_size = ref orig_size in
  let accept p' =
    Typecheck.check p' = Ok ()
    && Typecheck.size_program p' < !cur_size
    && !evals < max_evals
    && begin
         incr evals;
         Oracle.fails_like !t failure p'
       end
  in
  let improved = ref true in
  while !improved && !evals < max_evals do
    improved := false;
    match Seq.find accept (candidates !cur) with
    | Some p' ->
      let size' = Typecheck.size_program p' in
      incr steps;
      log :=
        Printf.sprintf "step %d: size %d -> %d" !steps !cur_size size' :: !log;
      cur := p';
      cur_size := size';
      t := tune_fuel !t p';
      improved := true
    | None -> ()
  done;
  {
    sh_program = !cur;
    sh_size = !cur_size;
    sh_orig_size = orig_size;
    sh_steps = !steps;
    sh_evals = !evals;
    sh_log = List.rev !log;
  }
