(** Seeded, typed random TIR program generator.

    Programs are well-typed by construction ({!Typecheck.check} always
    succeeds on the output), terminate by construction (for-loops have
    constant bounds, while-loops decrement a dedicated counter, recursion
    carries an explicit depth budget that strictly decreases), and never
    trap (divisors are forced nonzero, addresses are masked in-bounds and
    width-aligned into three shared globals so loads/stores alias
    heavily).  Equal seeds give byte-equal programs. *)

type cfg = {
  max_stmts : int;     (** statement budget for [main]'s body *)
  max_depth : int;     (** maximum control-flow nesting depth *)
  max_funcs : int;     (** maximum number of helper functions *)
  max_expr_depth : int;(** maximum expression tree depth *)
}

val default_cfg : cfg

val gen_program : ?cfg:cfg -> seed:int -> unit -> Trips_tir.Ast.program
(** Generate the program for [seed].  [main] takes no parameters and
    returns an [I64] mixing live variables with a checksum sweep over the
    shared globals, so memory effects surface in the return value too. *)
