(** Well-typedness checker and size metrics for TIR ASTs.

    The fuzzer's generator guarantees every emitted program passes [check];
    the shrinker uses it to reject candidates that would break typing, and
    the size metrics define the strict-decrease order the shrinker walks. *)

val check : Trips_tir.Ast.program -> (unit, string) result
(** Flow-sensitive well-typedness: every variable use is definitely
    assigned (branch-insensitive: [If] joins by intersection, loop-body
    definitions are discarded), every variable keeps a single type per
    function, operators/loads/stores/calls are applied at the right types,
    globals referenced by [Glo] exist, and [For] steps are nonzero. *)

val size_expr : Trips_tir.Ast.expr -> int
val size_stmt : Trips_tir.Ast.stmt -> int
val size_global : Trips_tir.Ast.global -> int

val size_program : Trips_tir.Ast.program -> int
(** Total AST node count (statements + expression nodes + globals and
    their initializer cells); the measure the shrinker strictly
    decreases. *)

val definitely_returns : Trips_tir.Ast.stmt list -> bool

val stmt_count : Trips_tir.Ast.program -> int
(** Number of statements (including nested ones) across all functions. *)
