module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty

exception Ill_typed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Ill_typed s)) fmt

module SS = Set.Make (String)

type fsig = { s_params : Ty.t list; s_ret : Ty.t option }

type env = {
  globals : SS.t;
  sigs : (string, fsig) Hashtbl.t;
  tymap : (string, Ty.t) Hashtbl.t; (* every var ever assigned, per function *)
  mutable defined : SS.t;           (* definitely assigned at this point *)
}

let is_float_binop (op : Ast.binop) =
  match op with
  | Fadd | Fsub | Fmul | Fdiv | Feq | Fne | Flt | Fle | Fgt | Fge -> true
  | _ -> false

let float_binop_ret (op : Ast.binop) =
  match op with Fadd | Fsub | Fmul | Fdiv -> Ty.F64 | _ -> Ty.I64

let rec type_expr env (e : Ast.expr) : Ty.t option =
  match e with
  | Int _ -> Some Ty.I64
  | Flt _ -> Some Ty.F64
  | Var x ->
    if not (SS.mem x env.defined) then fail "use of possibly-undefined var %s" x;
    Some (Hashtbl.find env.tymap x)
  | Glo g ->
    if not (SS.mem g env.globals) then fail "unknown global %s" g;
    Some Ty.I64
  | Bin (op, a, b) ->
    let ta = operand env a and tb = operand env b in
    if is_float_binop op then begin
      if ta <> Ty.F64 || tb <> Ty.F64 then
        fail "float binop %s applied to non-float operands" (Ast.binop_name op);
      Some (float_binop_ret op)
    end
    else begin
      if ta <> Ty.I64 || tb <> Ty.I64 then
        fail "int binop %s applied to non-int operands" (Ast.binop_name op);
      Some Ty.I64
    end
  | Un (op, a) ->
    let ta = operand env a in
    let need want got name =
      if got <> want then fail "unop %s operand type mismatch" name
    in
    (match op with
    | Neg | Not | Sext _ | Zext _ ->
      need Ty.I64 ta (Ast.unop_name op);
      Some Ty.I64
    | Fneg ->
      need Ty.F64 ta "fneg";
      Some Ty.F64
    | Itof ->
      need Ty.I64 ta "itof";
      Some Ty.F64
    | Ftoi ->
      need Ty.F64 ta "ftoi";
      Some Ty.I64)
  | Load (t, w, a) ->
    if operand env a <> Ty.I64 then fail "load address is not an int";
    if t = Ty.F64 && w <> Ty.W8 then fail "f64 load must have width 8";
    Some t
  | Call (f, args) ->
    let s =
      try Hashtbl.find env.sigs f with Not_found -> fail "call to unknown %s" f
    in
    if List.length args <> List.length s.s_params then
      fail "call %s: arity mismatch" f;
    List.iter2
      (fun a t ->
        if operand env a <> t then fail "call %s: argument type mismatch" f)
      args s.s_params;
    s.s_ret

and operand env e =
  match type_expr env e with
  | Some t -> t
  | None -> fail "void call used as a value"

let bind env x t =
  (match Hashtbl.find_opt env.tymap x with
  | Some t' when t' <> t -> fail "var %s rebound at a different type" x
  | _ -> ());
  Hashtbl.replace env.tymap x t;
  env.defined <- SS.add x env.defined

let rec check_stmt env ~ret (s : Ast.stmt) =
  match s with
  | Let (x, e) -> bind env x (operand env e)
  | Store (w, a, v) ->
    if operand env a <> Ty.I64 then fail "store address is not an int";
    (match operand env v with
    | Ty.I64 -> ()
    | Ty.F64 -> if w <> Ty.W8 then fail "f64 store must have width 8")
  | If (c, t, e) ->
    if operand env c <> Ty.I64 then fail "if condition is not an int";
    let base = env.defined in
    check_body env ~ret t;
    let dt = env.defined in
    env.defined <- base;
    check_body env ~ret e;
    let de = env.defined in
    env.defined <- SS.inter dt de
  | While (c, b) ->
    if operand env c <> Ty.I64 then fail "while condition is not an int";
    let base = env.defined in
    check_body env ~ret b;
    env.defined <- base
  | For (x, lo, hi, step, b) ->
    if step = 0L then fail "for step must be nonzero";
    if operand env lo <> Ty.I64 then fail "for lower bound is not an int";
    if operand env hi <> Ty.I64 then fail "for upper bound is not an int";
    bind env x Ty.I64;
    let base = env.defined in
    check_body env ~ret b;
    env.defined <- base
  | Expr e -> ignore (type_expr env e)
  | Return None -> if ret <> None then fail "bare return in a value function"
  | Return (Some e) ->
    let t = operand env e in
    if ret <> Some t then fail "return type mismatch"

and check_body env ~ret stmts = List.iter (check_stmt env ~ret) stmts

(* A value-returning function must not fall off the end of its body: the
   interpreter would yield no result where the backends' ABI register
   conventions yield one, a divergence that is a program bug, not a
   compiler bug. *)
let rec definitely_returns body = List.exists returns_stmt body

and returns_stmt (s : Ast.stmt) =
  match s with
  | Ast.Return _ -> true
  | Ast.If (_, t, e) -> definitely_returns t && definitely_returns e
  | _ -> false

let check (p : Ast.program) : (unit, string) result =
  try
    let globals =
      List.fold_left
        (fun acc (g : Ast.global) ->
          if SS.mem g.gname acc then fail "duplicate global %s" g.gname;
          if g.size <= 0 then fail "global %s has nonpositive size" g.gname;
          SS.add g.gname acc)
        SS.empty p.globals
    in
    let sigs = Hashtbl.create 16 in
    List.iter
      (fun (f : Ast.func) ->
        if Hashtbl.mem sigs f.fname then fail "duplicate function %s" f.fname;
        Hashtbl.add sigs f.fname
          { s_params = List.map snd f.params; s_ret = f.ret })
      p.funcs;
    List.iter
      (fun (f : Ast.func) ->
        let env =
          { globals; sigs; tymap = Hashtbl.create 32; defined = SS.empty }
        in
        List.iter (fun (x, t) -> bind env x t) f.params;
        if f.ret <> None && not (definitely_returns f.body) then
          fail "%s: may fall off the end without returning" f.fname;
        try check_body env ~ret:f.ret f.body
        with Ill_typed m -> fail "%s: %s" f.fname m)
      p.funcs;
    Ok ()
  with Ill_typed m -> Error m

(* AST size: one unit per expression node and per statement. *)

let rec size_expr (e : Ast.expr) =
  match e with
  | Int _ | Flt _ | Var _ | Glo _ -> 1
  | Bin (_, a, b) -> 1 + size_expr a + size_expr b
  | Un (_, a) | Load (_, _, a) -> 1 + size_expr a
  | Call (_, args) -> List.fold_left (fun n a -> n + size_expr a) 1 args

let rec size_stmt (s : Ast.stmt) =
  match s with
  | Let (_, e) | Expr e | Return (Some e) -> 1 + size_expr e
  | Return None -> 1
  | Store (_, a, v) -> 1 + size_expr a + size_expr v
  | If (c, t, e) -> 1 + size_expr c + size_body t + size_body e
  | While (c, b) -> 1 + size_expr c + size_body b
  | For (_, lo, hi, _, b) -> 1 + size_expr lo + size_expr hi + size_body b

and size_body b = List.fold_left (fun n s -> n + size_stmt s) 0 b

let size_func (f : Ast.func) = size_body f.body

let size_global (g : Ast.global) =
  1 + match g.init with None -> 0 | Some cells -> Array.length cells

let size_program (p : Ast.program) =
  List.fold_left (fun n g -> n + size_global g) 0 p.globals
  + List.fold_left (fun n f -> n + size_func f) 0 p.funcs

let rec stmt_count_stmt (s : Ast.stmt) =
  match s with
  | Let _ | Store _ | Expr _ | Return _ -> 1
  | If (_, t, e) -> 1 + stmt_count_body t + stmt_count_body e
  | While (_, b) | For (_, _, _, _, b) -> 1 + stmt_count_body b

and stmt_count_body b = List.fold_left (fun n s -> n + stmt_count_stmt s) 0 b

let stmt_count (p : Ast.program) =
  List.fold_left (fun n (f : Ast.func) -> n + stmt_count_body f.body) 0 p.funcs
