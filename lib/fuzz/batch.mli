(** Engine-parallel fuzzing batches.

    A batch generates [count] programs from consecutive seeds, runs each
    through the differential {!Oracle}, and auto-shrinks every divergence
    with {!Shrink}.  Seeds fan out across the engine's worker domains as
    warm sub-jobs of one uncached {!Trips_engine.Engine} job — fuzzing is
    never memoized; every program recomputes the full stack.  Results come
    back in seed order, so a batch report is deterministic for a fixed
    seed regardless of worker count. *)

type outcome =
  | Pass
  | Invalid of string  (** reference interpreter trapped / out of fuel *)
  | Divergent of {
      d_failures : Oracle.failure list;
      d_first : Oracle.failure;  (** the failure the shrinker minimized *)
      d_shrink : Shrink.result;
    }

type row = { b_seed : int; b_size : int; b_stmts : int; b_outcome : outcome }

type t = {
  bt_seed : int;   (** first seed *)
  bt_count : int;
  bt_presets : string list;
  bt_inject : string option;
  bt_rows : row list;  (** in seed order *)
  bt_pass : int;
  bt_invalid : int;
  bt_divergent : int;
}

val run_one :
  ?gen_cfg:Gen.cfg -> ?shrink_evals:int -> Oracle.t -> seed:int -> row

val run :
  ?workers:int ->
  ?gen_cfg:Gen.cfg ->
  ?shrink_evals:int ->
  Oracle.t ->
  seed:int ->
  count:int ->
  unit ->
  t
(** Parallel batch over seeds [seed .. seed+count-1]. *)

val run_seq :
  ?gen_cfg:Gen.cfg ->
  ?shrink_evals:int ->
  Oracle.t ->
  seed:int ->
  count:int ->
  unit ->
  t
(** Same, single-domain (no engine); used by tests. *)

val divergences : t -> (row * Oracle.failure * Shrink.result) list

val to_json : t -> Trips_util.Json.t
(** Deterministic report (no wall-clock values): byte-identical across
    reruns with the same seed, count, and oracle. *)

val table : t -> Trips_util.Table.t
(** Summary table listing divergent/invalid seeds and totals. *)
