(** Differential oracle: one TIR program, every backend, every check.

    For each program the oracle runs the AST interpreter as the reference,
    then cross-checks, per compilation preset: compiler self-verification
    and translation validation ([Driver.compile ~verify ~validate]), strict
    lint of the compiled blocks, the EDGE functional executor's result and
    memory image, the cycle simulator's result and memory image, and the
    static timing analyzer's sanity corridor (the estimate must stay
    within a documented factor of simulated cycles; see [timing_slack] for
    why a strict lower bound does not hold).  Independently it checks the
    lowered-CFG
    interpreter and the RISC backend against the same reference.

    The memory comparison is {!Trips_tir.Image.checksum}, which covers the
    program-data region only (below the scratch/stack area), so backend
    scratch usage does not produce false diffs. *)

type inject = Geni_bump | Imm_bump | Absint_flaw of int
(** Compiler-bug injection.  [Geni_bump]/[Imm_bump] mutate the compiled
    EDGE program after the (clean) pipeline ran — bump the first [Geni]
    constant or the first instruction immediate, the PR 6
    transval-mutation style, caught by the execution diff.
    [Absint_flaw n] (["absint-<n>"], [1..Trips_analysis.Absint.num_bugs])
    instead corrupts the compiler-side abstract interpretation that
    drives the global optimization passes; the translation validator's
    clean re-derivation refutes the bogus facts, so these are caught by
    the "verify" check. *)

val inject_to_string : inject -> string
val inject_of_string : string -> inject option

type failure = {
  f_check : string;
      (** "compile" | "verify" | "lint" | "exec" | "mem" | "sim" | "sim-mem"
          | "timing" | "cfg" | "cfg-mem" | "risc" | "risc-mem" *)
  f_config : string;  (** preset name, "RISC", or "" for preset-independent *)
  f_detail : string;
}

type verdict =
  | Pass
  | Invalid of string  (** reference itself trapped / ran out of fuel *)
  | Fail of failure list

type t = {
  presets : Trips_compiler.Driver.preset list;
  check_verify : bool;
  check_lint : bool;
  check_transval : bool;
  check_sim : bool;
  check_spec : bool;
  check_risc : bool;
  check_cfg : bool;
  inject : inject option;
  timing_predict : (Trips_edge.Block.program -> Trips_tir.Image.t -> int) option;
  timing_slack : float;
      (** the static estimate must stay within
          [timing_slack * simulated + timing_margin] cycles.  It is {e not}
          a strict lower bound: the model composes per-block critical paths
          serially while the simulator overlaps blocks in flight, so
          predication-heavy random programs overshoot by over 2x
          (worst observed ~2.3x over 500 seeds; default slack 4.0). *)
  timing_margin : int;  (** absolute headroom, swamps tiny programs (1000) *)
  fuel : int;
}

val all_presets : Trips_compiler.Driver.preset list
(** O0, C, H, BB. *)

val make :
  ?presets:Trips_compiler.Driver.preset list ->
  ?check_verify:bool ->
  ?check_lint:bool ->
  ?check_transval:bool ->
  ?check_sim:bool ->
  ?check_spec:bool ->
  ?check_risc:bool ->
  ?check_cfg:bool ->
  ?inject:inject ->
  ?timing_predict:(Trips_edge.Block.program -> Trips_tir.Image.t -> int) ->
  ?timing_slack:float ->
  ?timing_margin:int ->
  ?fuel:int ->
  unit ->
  t
(** Everything on by default except [timing_predict], which lives in
    {!Trips_harness} (dependency layering) and is injected by callers. *)

val apply_inject : inject -> Trips_edge.Block.program -> Trips_edge.Block.program

val run : t -> Trips_tir.Ast.program -> verdict

val focus : t -> failure -> t
(** Restrict to the cheapest configuration that can still detect [failure];
    the shrinker evaluates candidates under this. *)

val fails_like : t -> failure -> Trips_tir.Ast.program -> bool
(** Does [run] report some failure with the same [f_check]? *)
