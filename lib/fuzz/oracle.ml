module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Image = Trips_tir.Image
module Interp = Trips_tir.Interp
module Lower = Trips_tir.Lower
module Semantics = Trips_tir.Semantics
module Driver = Trips_compiler.Driver
module Block = Trips_edge.Block
module Isa = Trips_edge.Isa
module Exec = Trips_edge.Exec
module Core = Trips_sim.Core
module Specialize = Trips_sim.Specialize
module Analyzer = Trips_analysis.Analyzer
module Diag = Trips_analysis.Diag
module Rcodegen = Trips_risc.Codegen
module Rexec = Trips_risc.Exec

type inject = Geni_bump | Imm_bump | Absint_flaw of int

let inject_to_string = function
  | Geni_bump -> "geni-bump"
  | Imm_bump -> "imm-bump"
  | Absint_flaw n -> Printf.sprintf "absint-%d" n

let inject_of_string = function
  | "geni-bump" -> Some Geni_bump
  | "imm-bump" -> Some Imm_bump
  | s -> (
    match String.length s > 7 && String.sub s 0 7 = "absint-" with
    | true -> (
      match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
      | Some n when n >= 1 && n <= Trips_analysis.Absint.num_bugs ->
        Some (Absint_flaw n)
      | _ -> None)
    | false -> None)

type failure = { f_check : string; f_config : string; f_detail : string }

type verdict = Pass | Invalid of string | Fail of failure list

type t = {
  presets : Driver.preset list;
  check_verify : bool;
  check_lint : bool;
  check_transval : bool;
  check_sim : bool;
  check_spec : bool;
  check_risc : bool;
  check_cfg : bool;
  inject : inject option;
  timing_predict : (Block.program -> Image.t -> int) option;
  timing_slack : float;
  timing_margin : int;
  fuel : int;
}

let all_presets =
  [ Driver.o0; Driver.compiled; Driver.hand; Driver.basic_blocks ]

let make ?(presets = all_presets) ?(check_verify = true) ?(check_lint = true)
    ?(check_transval = true) ?(check_sim = true) ?(check_spec = true)
    ?(check_risc = true)
    ?(check_cfg = true) ?inject ?timing_predict ?(timing_slack = 4.0)
    ?(timing_margin = 1000) ?(fuel = 50_000_000) () =
  {
    presets;
    check_verify;
    check_lint;
    check_transval;
    check_sim;
    check_spec;
    check_risc;
    check_cfg;
    inject;
    timing_predict;
    timing_slack;
    timing_margin;
    fuel;
  }

(* Flip the first matching instruction of the compiled program: the PR 6
   mutation style, applied post-compile so only the execution diff (not the
   translation validator, which sees the unmutated pipeline) can catch it. *)
let apply_inject kind (bp : Block.program) : Block.program =
  let hit = ref false in
  let map_inst (inst : Isa.inst) =
    if !hit then inst
    else
      match (kind, inst.op, inst.imm) with
      | Geni_bump, Isa.Geni k, _ ->
        hit := true;
        { inst with op = Isa.Geni (Int64.add k 1L) }
      | Imm_bump, _, Some m ->
        hit := true;
        { inst with imm = Some (Int64.add m 1L) }
      | _ -> inst
  in
  let map_block (b : Block.t) = { b with insts = Array.map map_inst b.insts } in
  let map_func (f : Block.func) =
    { f with blocks = List.map map_block f.blocks }
  in
  { bp with funcs = List.map map_func bp.funcs }

let value_eq a b =
  match (a, b) with
  | Some (Ty.Vi x), Some (Ty.Vi y) -> Int64.equal x y
  | Some (Ty.Vf x), Some (Ty.Vf y) ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | None, None -> true
  | _ -> false

let value_str = function
  | Some (Ty.Vi n) -> Int64.to_string n
  | Some (Ty.Vf x) -> Printf.sprintf "%h" x
  | None -> "-"

let run t (p : Ast.program) : verdict =
  match Typecheck.check p with
  | Error m -> Invalid ("ill-typed: " ^ m)
  | Ok () when not (List.exists (fun (f : Ast.func) -> f.fname = "main") p.funcs)
    ->
    Invalid "no main function"
  | Ok () -> (
    let entry = "main" in
    let ret_ty = (Ast.find_func p entry).ret in
    let image0 = Image.build p.globals in
    match Interp.run_ast ~fuel:t.fuel p image0 entry [] with
    | exception Semantics.Trap m -> Invalid ("trap: " ^ m)
    | exception Interp.Out_of_fuel -> Invalid "out of fuel"
    | ref_out ->
      let ref_ret = ref_out.Interp.result in
      let ref_sum = Image.checksum image0 in
      let fails = ref [] in
      let addf f_check f_config f_detail =
        fails := { f_check; f_config; f_detail } :: !fails
      in
      let diff_detail what got =
        Printf.sprintf "%s: got %s, interp %s" what got (value_str ref_ret)
      in
      (if t.check_cfg then
         let cfg = Lower.program p in
         let img = Image.build p.globals in
         match Interp.run_cfg ~fuel:t.fuel cfg img entry [] with
         | exception e -> addf "cfg" "" ("raised " ^ Printexc.to_string e)
         | oc ->
           if not (value_eq oc.Interp.result ref_ret) then
             addf "cfg" "" (diff_detail "cfg-interp result" (value_str oc.Interp.result));
           if not (Int64.equal (Image.checksum img) ref_sum) then
             addf "cfg-mem" ""
               (Printf.sprintf "memory image diverged: %Ld vs %Ld"
                  (Image.checksum img) ref_sum));
      List.iter
        (fun (preset : Driver.preset) ->
          let pname = preset.Driver.pname in
          let absint_bug =
            match t.inject with Some (Absint_flaw n) -> Some n | _ -> None
          in
          match
            Driver.compile ~verify:t.check_verify ~validate:t.check_transval
              ?absint_bug preset p
          with
          | exception Driver.Verify_failed (stage, diags) ->
            addf "verify" pname
              (Printf.sprintf "%s: %s" stage (Analyzer.summary diags))
          | exception e -> addf "compile" pname (Printexc.to_string e)
          | bp -> (
            let bp =
              match t.inject with
              | Some ((Geni_bump | Imm_bump) as k) -> apply_inject k bp
              | _ -> bp
            in
            (if t.check_lint then
               let diags = Analyzer.analyze_program bp in
               if Diag.failed ~strict:true diags then
                 addf "lint" pname (Analyzer.summary diags));
            let img = Image.build p.globals in
            (match Exec.run ~fuel:t.fuel bp img ~entry ~args:[] with
            | exception e -> addf "exec" pname ("raised " ^ Printexc.to_string e)
            | r ->
              if not (value_eq r.Exec.ret ref_ret) then
                addf "exec" pname (diff_detail "EDGE result" (value_str r.Exec.ret));
              if not (Int64.equal (Image.checksum img) ref_sum) then
                addf "mem" pname
                  (Printf.sprintf "memory image diverged: %Ld vs %Ld"
                     (Image.checksum img) ref_sum));
            if t.check_sim then
              let simg = Image.build p.globals in
              match Core.run ~fuel:t.fuel bp simg ~entry ~args:[] with
              | exception e -> addf "sim" pname ("raised " ^ Printexc.to_string e)
              | r ->
                if not (value_eq r.Core.ret ref_ret) then
                  addf "sim" pname (diff_detail "sim result" (value_str r.Core.ret));
                if not (Int64.equal (Image.checksum simg) ref_sum) then
                  addf "sim-mem" pname
                    (Printf.sprintf "memory image diverged: %Ld vs %Ld"
                       (Image.checksum simg) ref_sum);
                (* the specialized engine promises bit-identity with the
                   interpreted one on any program — exactly the property
                   random programs are good at stressing *)
                (if t.check_spec then
                   let simg2 = Image.build p.globals in
                   match
                     Specialize.run ~fuel:t.fuel ~threshold:0 bp simg2 ~entry
                       ~args:[]
                   with
                   | exception e ->
                     addf "spec" pname ("raised " ^ Printexc.to_string e)
                   | rs ->
                     let tm (x : Core.result) = x.Core.timing in
                     let pick (st : Core.stats) =
                       [ st.Core.cycles; st.Core.blocks;
                         st.Core.branch_mispredicts;
                         st.Core.callret_mispredicts; st.Core.load_flushes;
                         st.Core.icache_misses; st.Core.dcache_misses;
                         st.Core.l2_misses ]
                     in
                     if not (value_eq rs.Core.ret r.Core.ret) then
                       addf "spec" pname
                         (diff_detail "specialized result" (value_str rs.Core.ret))
                     else if pick (tm rs) <> pick (tm r) then
                       addf "spec" pname
                         (Printf.sprintf
                            "specialized timing diverged: cycles %d vs %d"
                            (tm rs).Core.cycles (tm r).Core.cycles)
                     else
                       let po = r.Core.opn and ps_ = rs.Core.opn in
                       if
                         po.Trips_noc.Opn.total_packets
                         <> ps_.Trips_noc.Opn.total_packets
                         || po.Trips_noc.Opn.total_hops
                            <> ps_.Trips_noc.Opn.total_hops
                         || po.Trips_noc.Opn.contention_cycles
                            <> ps_.Trips_noc.Opn.contention_cycles
                         || po.Trips_noc.Opn.packets <> ps_.Trips_noc.Opn.packets
                       then
                         addf "spec" pname "specialized OPN profile diverged");
                (match t.timing_predict with
                | None -> ()
                | Some predict -> (
                  let timg = Image.build p.globals in
                  match predict bp timg with
                  | exception e ->
                    addf "timing" pname
                      ("predictor raised " ^ Printexc.to_string e)
                  | predicted ->
                    (* The static model composes per-block critical paths
                       serially (plus predictor redirects), while the
                       simulator overlaps up to a window's worth of blocks —
                       so the estimate is not a strict lower bound on
                       predication-heavy random programs (worst observed
                       overshoot ~2.3x over 500 seeds).  The check is a
                       sanity corridor: fail
                       only when the estimate exceeds slack * measured +
                       margin, which still catches gross model breakage. *)
                    let measured = r.Core.timing.Core.cycles in
                    let limit =
                      (t.timing_slack *. float_of_int measured)
                      +. float_of_int t.timing_margin
                    in
                    if float_of_int predicted > limit then
                      addf "timing" pname
                        (Printf.sprintf
                           "static estimate %d outside corridor (%.1fx \
                            simulated %d + %d)"
                           predicted t.timing_slack measured t.timing_margin)))))
        t.presets;
      (if t.check_risc then
         match Rcodegen.compile p with
         | exception e -> addf "risc" "RISC" ("compile raised " ^ Printexc.to_string e)
         | rp -> (
           let img = Image.build p.globals in
           match Rexec.run ~fuel:t.fuel rp img ~entry ~args:[] with
           | exception e -> addf "risc" "RISC" ("raised " ^ Printexc.to_string e)
           | r ->
             let ret = Rexec.ret_value r ret_ty in
             if not (value_eq ret ref_ret) then
               addf "risc" "RISC" (diff_detail "RISC result" (value_str ret));
             if not (Int64.equal (Image.checksum img) ref_sum) then
               addf "risc-mem" "RISC"
                 (Printf.sprintf "memory image diverged: %Ld vs %Ld"
                    (Image.checksum img) ref_sum)));
      (match List.rev !fails with [] -> Pass | fs -> Fail fs))

(* The cheapest sub-oracle that still detects [f]: used by the shrinker so
   candidate evaluation does not pay for the whole stack. *)
let focus t (f : failure) =
  let presets =
    match List.filter (fun (p : Driver.preset) -> p.Driver.pname = f.f_config) t.presets with
    | [] -> t.presets
    | ps -> ps
  in
  let is = List.mem f.f_check in
  {
    t with
    presets = (if is [ "cfg"; "cfg-mem"; "risc"; "risc-mem" ] then [] else presets);
    check_cfg = is [ "cfg"; "cfg-mem" ];
    check_risc = is [ "risc"; "risc-mem" ];
    check_verify = is [ "verify"; "compile" ];
    check_lint = is [ "lint" ];
    check_transval = is [ "verify"; "compile" ] && t.check_transval;
    check_sim = is [ "sim"; "sim-mem"; "timing"; "spec" ];
    check_spec = is [ "spec" ];
    timing_predict = (if is [ "timing" ] then t.timing_predict else None);
    (* Shrink candidates are small; a tight fuel bound rejects candidates
       that became non-terminating without burning seconds each. *)
    fuel = min t.fuel 5_000_000;
  }

(* Does the oracle still report a failure of the same kind?  The shrinker's
   interestingness predicate. *)
let fails_like t (orig : failure) p =
  match run t p with
  | Pass | Invalid _ -> false
  | Fail fs -> List.exists (fun f -> f.f_check = orig.f_check) fs
