(** Delta-debugging shrinker for failing TIR programs.

    Greedy descent: enumerate structural candidates (drop helper functions,
    drop globals, strip initializers, ddmin-style removal of aligned
    statement chunks at every nesting level, unwrap [If]/[While]/[For] into
    their bodies, replace expressions by subexpressions or constants), and
    apply the first candidate that (a) still typechecks, (b) is strictly
    smaller under {!Typecheck.size_program}, and (c) still fails the oracle
    with the original failure's check kind — evaluated under
    {!Oracle.focus} so candidate runs stay cheap.  Enumeration is RNG-free,
    so shrinking is deterministic. *)

type result = {
  sh_program : Trips_tir.Ast.program;  (** the minimized program *)
  sh_size : int;
  sh_orig_size : int;
  sh_steps : int;  (** accepted rewrites *)
  sh_evals : int;  (** oracle evaluations spent *)
  sh_log : string list;  (** one line per accepted step, oldest first *)
}

val candidates : Trips_tir.Ast.program -> Trips_tir.Ast.program Seq.t
(** One rewrite step's candidate programs, most aggressive first.  Exposed
    for the shrinker property tests. *)

val shrink :
  ?max_evals:int ->
  Oracle.t ->
  Oracle.failure ->
  Trips_tir.Ast.program ->
  result
(** [shrink oracle failure p] minimizes [p] while it keeps failing like
    [failure].  [max_evals] (default 4000) bounds oracle re-runs. *)
