module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Json = Trips_util.Json

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* Int64s travel as decimal strings (Json.Int is a 63-bit int), floats as
   the decimal spelling of their IEEE bit pattern, so round-trips are
   exact for every value including NaNs and infinities. *)
let j64 (n : int64) = Json.Str (Int64.to_string n)

let of_j64 j =
  match Json.as_str j with
  | Some s -> (try Int64.of_string s with _ -> fail "bad int64 %S" s)
  | None -> fail "expected an int64 string"

let jflt (x : float) = Json.Str (Int64.to_string (Int64.bits_of_float x))

let of_jflt j = Int64.float_of_bits (of_j64 j)

let jty = function Ty.I64 -> Json.Str "i64" | Ty.F64 -> Json.Str "f64"

let of_jty j =
  match Json.as_str j with
  | Some "i64" -> Ty.I64
  | Some "f64" -> Ty.F64
  | _ -> fail "expected a type"

let jwidth (w : Ty.width) = Json.Int (Ty.bytes_of_width w)

let of_jwidth j =
  match Json.as_int j with
  | Some 1 -> Ty.W1
  | Some 2 -> Ty.W2
  | Some 4 -> Ty.W4
  | Some 8 -> Ty.W8
  | _ -> fail "expected a width"

(* Operator names reuse the stable Ast.binop_name / unop_name spellings. *)
let all_binops =
  [ Ast.Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Lsr; Asr; Eq; Ne; Lt;
    Le; Gt; Ge; Ult; Ule; Fadd; Fsub; Fmul; Fdiv; Feq; Fne; Flt; Fle; Fgt;
    Fge ]

let all_unops =
  [ Ast.Neg; Not; Fneg; Itof; Ftoi; Sext Ty.W1; Sext Ty.W2; Sext Ty.W4;
    Sext Ty.W8; Zext Ty.W1; Zext Ty.W2; Zext Ty.W4; Zext Ty.W8 ]

let binop_of_name s =
  match List.find_opt (fun op -> Ast.binop_name op = s) all_binops with
  | Some op -> op
  | None -> fail "unknown binop %S" s

let unop_of_name s =
  match List.find_opt (fun op -> Ast.unop_name op = s) all_unops with
  | Some op -> op
  | None -> fail "unknown unop %S" s

let field k j = match Json.member k j with Some v -> v | None -> fail "missing field %S" k

let str_field k j =
  match Json.mem_str k j with Some s -> s | None -> fail "missing string field %S" k

let rec jexpr (e : Ast.expr) : Json.t =
  match e with
  | Int n -> Json.Obj [ ("k", Json.Str "int"); ("v", j64 n) ]
  | Flt x -> Json.Obj [ ("k", Json.Str "flt"); ("bits", jflt x) ]
  | Var x -> Json.Obj [ ("k", Json.Str "var"); ("x", Json.Str x) ]
  | Glo g -> Json.Obj [ ("k", Json.Str "glo"); ("g", Json.Str g) ]
  | Bin (op, a, b) ->
    Json.Obj
      [ ("k", Json.Str "bin"); ("op", Json.Str (Ast.binop_name op));
        ("a", jexpr a); ("b", jexpr b) ]
  | Un (op, a) ->
    Json.Obj
      [ ("k", Json.Str "un"); ("op", Json.Str (Ast.unop_name op));
        ("a", jexpr a) ]
  | Load (t, w, a) ->
    Json.Obj
      [ ("k", Json.Str "load"); ("ty", jty t); ("w", jwidth w); ("a", jexpr a) ]
  | Call (f, args) ->
    Json.Obj
      [ ("k", Json.Str "call"); ("f", Json.Str f);
        ("args", Json.List (List.map jexpr args)) ]

let rec of_jexpr (j : Json.t) : Ast.expr =
  match str_field "k" j with
  | "int" -> Int (of_j64 (field "v" j))
  | "flt" -> Flt (of_jflt (field "bits" j))
  | "var" -> Var (str_field "x" j)
  | "glo" -> Glo (str_field "g" j)
  | "bin" ->
    Bin
      (binop_of_name (str_field "op" j), of_jexpr (field "a" j),
       of_jexpr (field "b" j))
  | "un" -> Un (unop_of_name (str_field "op" j), of_jexpr (field "a" j))
  | "load" ->
    Load (of_jty (field "ty" j), of_jwidth (field "w" j), of_jexpr (field "a" j))
  | "call" -> (
    match Json.member "args" j |> Option.map Json.as_list with
    | Some (Some args) -> Call (str_field "f" j, List.map of_jexpr args)
    | _ -> fail "call without args")
  | k -> fail "unknown expr kind %S" k

let rec jstmt (s : Ast.stmt) : Json.t =
  match s with
  | Let (x, e) ->
    Json.Obj [ ("k", Json.Str "let"); ("x", Json.Str x); ("e", jexpr e) ]
  | Store (w, a, v) ->
    Json.Obj
      [ ("k", Json.Str "store"); ("w", jwidth w); ("a", jexpr a);
        ("v", jexpr v) ]
  | If (c, t, e) ->
    Json.Obj
      [ ("k", Json.Str "if"); ("c", jexpr c); ("t", jbody t); ("e", jbody e) ]
  | While (c, b) ->
    Json.Obj [ ("k", Json.Str "while"); ("c", jexpr c); ("b", jbody b) ]
  | For (x, lo, hi, step, b) ->
    Json.Obj
      [ ("k", Json.Str "for"); ("x", Json.Str x); ("lo", jexpr lo);
        ("hi", jexpr hi); ("step", j64 step); ("b", jbody b) ]
  | Expr e -> Json.Obj [ ("k", Json.Str "expr"); ("e", jexpr e) ]
  | Return None -> Json.Obj [ ("k", Json.Str "ret") ]
  | Return (Some e) -> Json.Obj [ ("k", Json.Str "ret"); ("e", jexpr e) ]

and jbody b = Json.List (List.map jstmt b)

let rec of_jstmt (j : Json.t) : Ast.stmt =
  match str_field "k" j with
  | "let" -> Let (str_field "x" j, of_jexpr (field "e" j))
  | "store" ->
    Store
      (of_jwidth (field "w" j), of_jexpr (field "a" j), of_jexpr (field "v" j))
  | "if" ->
    If (of_jexpr (field "c" j), of_jbody (field "t" j), of_jbody (field "e" j))
  | "while" -> While (of_jexpr (field "c" j), of_jbody (field "b" j))
  | "for" ->
    For
      (str_field "x" j, of_jexpr (field "lo" j), of_jexpr (field "hi" j),
       of_j64 (field "step" j), of_jbody (field "b" j))
  | "expr" -> Expr (of_jexpr (field "e" j))
  | "ret" -> (
    match Json.member "e" j with
    | None -> Return None
    | Some e -> Return (Some (of_jexpr e)))
  | k -> fail "unknown stmt kind %S" k

and of_jbody j =
  match Json.as_list j with
  | Some l -> List.map of_jstmt l
  | None -> fail "expected a statement list"

let jfunc (f : Ast.func) : Json.t =
  Json.Obj
    [
      ("name", Json.Str f.fname);
      ( "params",
        Json.List
          (List.map
             (fun (x, t) -> Json.Obj [ ("x", Json.Str x); ("ty", jty t) ])
             f.params) );
      ("ret", match f.ret with None -> Json.Null | Some t -> jty t);
      ("body", jbody f.body);
    ]

let of_jfunc (j : Json.t) : Ast.func =
  let params =
    match Json.member "params" j |> Option.map Json.as_list with
    | Some (Some l) ->
      List.map (fun p -> (str_field "x" p, of_jty (field "ty" p))) l
    | _ -> fail "func without params"
  in
  {
    fname = str_field "name" j;
    params;
    ret = (match field "ret" j with Json.Null -> None | t -> Some (of_jty t));
    body = of_jbody (field "body" j);
  }

let jglobal (g : Ast.global) : Json.t =
  Json.Obj
    [
      ("name", Json.Str g.gname);
      ("size", Json.Int g.size);
      ("align", Json.Int g.align);
      ( "init",
        match g.init with
        | None -> Json.Null
        | Some cells ->
          Json.List
            (Array.to_list cells
            |> List.map (fun (w, v) -> Json.List [ jwidth w; j64 v ])) );
    ]

let of_jglobal (j : Json.t) : Ast.global =
  let init =
    match field "init" j with
    | Json.Null -> None
    | Json.List cells ->
      Some
        (Array.of_list
           (List.map
              (fun c ->
                match Json.as_list c with
                | Some [ w; v ] -> (of_jwidth w, of_j64 v)
                | _ -> fail "bad init cell")
              cells))
    | _ -> fail "bad init"
  in
  {
    gname = str_field "name" j;
    size = (match Json.mem_int "size" j with Some n -> n | None -> fail "no size");
    align = (match Json.mem_int "align" j with Some n -> n | None -> fail "no align");
    init;
  }

let jprogram (p : Ast.program) : Json.t =
  Json.Obj
    [
      ("globals", Json.List (List.map jglobal p.globals));
      ("funcs", Json.List (List.map jfunc p.funcs));
    ]

let of_jprogram (j : Json.t) : Ast.program =
  match
    ( Json.member "globals" j |> Option.map Json.as_list,
      Json.member "funcs" j |> Option.map Json.as_list )
  with
  | Some (Some gs), Some (Some fs) ->
    { globals = List.map of_jglobal gs; funcs = List.map of_jfunc fs }
  | _ -> fail "program without globals/funcs"

(* {2 Corpus entries} *)

type entry = {
  e_name : string;
  e_seed : int;
  e_check : string;
  e_config : string;
  e_detail : string;
  e_inject : string option;  (* injected bug kind the entry reproduces *)
  e_program : Ast.program;
}

let entry_to_json (e : entry) : Json.t =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("name", Json.Str e.e_name);
      ("seed", Json.Int e.e_seed);
      ("check", Json.Str e.e_check);
      ("config", Json.Str e.e_config);
      ("detail", Json.Str e.e_detail);
      ( "inject",
        match e.e_inject with None -> Json.Null | Some k -> Json.Str k );
      ("program", jprogram e.e_program);
      (* Human-readable rendering; the decoder ignores it. *)
      ("text", Json.Str (Ast.to_string e.e_program));
    ]

let entry_of_json (j : Json.t) : entry =
  {
    e_name = str_field "name" j;
    e_seed = (match Json.mem_int "seed" j with Some n -> n | None -> 0);
    e_check = str_field "check" j;
    e_config = (match Json.mem_str "config" j with Some s -> s | None -> "");
    e_detail = (match Json.mem_str "detail" j with Some s -> s | None -> "");
    e_inject =
      (match Json.member "inject" j with
      | Some (Json.Str s) -> Some s
      | _ -> None);
    e_program = of_jprogram (field "program" j);
  }

let save dir (e : entry) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (e.e_name ^ ".json") in
  let oc = open_out path in
  output_string oc (Json.to_string (entry_to_json e));
  close_out oc;
  path

let load path : (entry, string) result =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.parse s with
  | Error m -> Error (Printf.sprintf "%s: %s" path m)
  | Ok j -> (
    try Ok (entry_of_json j)
    with Bad m -> Error (Printf.sprintf "%s: %s" path m))

let load_dir dir : (string * (entry, string) result) list =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load path))
