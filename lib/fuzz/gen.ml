module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Rng = Trips_util.Rng
open Ast.Infix

type cfg = {
  max_stmts : int;
  max_depth : int;
  max_funcs : int;
  max_expr_depth : int;
}

let default_cfg = { max_stmts = 24; max_depth = 3; max_funcs = 3; max_expr_depth = 4 }

(* Shared globals every generated program aliases through.  Sizes are powers
   of two so in-bounds address masks are cheap to construct. *)
let g_int1 = "gA"
let g_int2 = "gB"
let g_flt = "gF"
let g_size = 256

type fsig = {
  fs_name : string;
  fs_params : Ty.t list;
  fs_ret : Ty.t;
  fs_depth_first : bool; (* recursive: first arg is a small depth budget *)
}

type ctx = {
  rng : Rng.t;
  cfg : cfg;
  mutable fresh : int;
  mutable budget : int;          (* statements remaining for this function *)
  mutable funcs : fsig list;     (* callable helpers, in definition order *)
  mutable ints : string list;    (* definitely-assigned int vars *)
  mutable flts : string list;    (* definitely-assigned float vars *)
  ret : Ty.t;                    (* current function's return type *)
}

let fresh ctx prefix =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "%s%d" prefix ctx.fresh

let pick rng arr = arr.(Rng.int rng (Array.length arr))

let int_consts =
  [| 0L; 1L; 2L; 3L; 5L; 7L; 8L; -1L; -2L; 17L; 63L; 64L; 255L; 4096L;
     0xFF00FFL; 0x123456789AL; Int64.max_int; Int64.min_int |]

let flt_consts =
  [| 0.; 1.; -1.; 0.5; 2.0; 3.25; -2.75; 100.; 1e6; 1.5e-3; 1e18; -1e18 |]

let shift_consts = [| 0L; 1L; 3L; 7L; 31L; 63L; 64L; 65L; 127L; -1L |]

let int_binops = [| Ast.Add; Sub; Mul; And; Or; Xor |]
let cmp_binops = [| Ast.Eq; Ne; Lt; Le; Gt; Ge; Ult; Ule |]
let fcmp_binops = [| Ast.Feq; Fne; Flt; Fle; Fgt; Fge |]
let fbinops = [| Ast.Fadd; Fsub; Fmul; Fdiv |]
let shift_binops = [| Ast.Shl; Lsr; Asr |]
let ext_unops =
  [| Ast.Neg; Not; Sext Ty.W1; Sext Ty.W2; Sext Ty.W4; Zext Ty.W1;
     Zext Ty.W2; Zext Ty.W4 |]

let callable ctx want =
  List.filter (fun s -> s.fs_ret = want) ctx.funcs

(* An in-bounds, width-aligned address into global [gl]:
   &gl + ((idx & (cells-1)) << log2 width). *)
let address ~width ~gl idx =
  let bytes = Ty.bytes_of_width width in
  let cells = g_size / bytes in
  let shift = match width with Ty.W1 -> 0 | W2 -> 1 | W4 -> 2 | W8 -> 3 in
  g gl +: ((idx &: i (cells - 1)) <<: i shift)

let rec int_expr ctx d =
  if d <= 0 then int_leaf ctx
  else
    match Rng.int ctx.rng 100 with
    | n when n < 10 -> int_leaf ctx
    | n when n < 42 ->
      Ast.Bin (pick ctx.rng int_binops, int_expr ctx (d - 1), int_expr ctx (d - 1))
    | n when n < 50 ->
      (* Division and remainder: force the divisor nonzero with `| 1`
         (Int64 division saturates on min_int / -1, so -1 is fine too). *)
      let op = if Rng.bool ctx.rng then Ast.Div else Ast.Rem in
      let divisor =
        if Rng.int ctx.rng 3 = 0 then
          i64 (pick ctx.rng [| 1L; 2L; 3L; 7L; -1L; 255L; Int64.min_int |])
        else int_expr ctx (d - 1) |: i 1
      in
      Ast.Bin (op, int_expr ctx (d - 1), divisor)
    | n when n < 60 ->
      let count =
        if Rng.bool ctx.rng then i64 (pick ctx.rng shift_consts)
        else int_expr ctx (d - 1)
      in
      Ast.Bin (pick ctx.rng shift_binops, int_expr ctx (d - 1), count)
    | n when n < 70 ->
      Ast.Bin (pick ctx.rng cmp_binops, int_expr ctx (d - 1), int_expr ctx (d - 1))
    | n when n < 76 ->
      Ast.Bin (pick ctx.rng fcmp_binops, flt_expr ctx (d - 1), flt_expr ctx (d - 1))
    | n when n < 84 -> Ast.Un (pick ctx.rng ext_unops, int_expr ctx (d - 1))
    | n when n < 89 -> Ast.Un (Ast.Ftoi, flt_expr ctx (d - 1))
    | n when n < 96 -> int_load ctx (d - 1)
    | _ -> (
      match callable ctx Ty.I64 with
      | [] -> int_leaf ctx
      | fs -> call_expr ctx (d - 1) (pick ctx.rng (Array.of_list fs)))

and int_leaf ctx =
  match ctx.ints with
  | [] -> i64 (pick ctx.rng int_consts)
  | vars ->
    if Rng.int ctx.rng 5 < 3 then v (pick ctx.rng (Array.of_list vars))
    else i64 (pick ctx.rng int_consts)

and int_load ctx d =
  let width = pick ctx.rng [| Ty.W8; W8; W4; W2; W1 |] in
  let gl = pick ctx.rng [| g_int1; g_int1; g_int2; g_flt |] in
  Ast.Load (Ty.I64, width, address ~width ~gl (int_expr ctx d))

and flt_expr ctx d =
  if d <= 0 then flt_leaf ctx
  else
    match Rng.int ctx.rng 100 with
    | n when n < 15 -> flt_leaf ctx
    | n when n < 55 ->
      Ast.Bin (pick ctx.rng fbinops, flt_expr ctx (d - 1), flt_expr ctx (d - 1))
    | n when n < 63 -> Ast.Un (Ast.Fneg, flt_expr ctx (d - 1))
    | n when n < 78 -> Ast.Un (Ast.Itof, int_expr ctx (d - 1))
    | n when n < 92 -> ldf (address ~width:Ty.W8 ~gl:g_flt (int_expr ctx (d - 1)))
    | _ -> (
      match callable ctx Ty.F64 with
      | [] -> flt_leaf ctx
      | fs -> call_expr ctx (d - 1) (pick ctx.rng (Array.of_list fs)))

and flt_leaf ctx =
  match ctx.flts with
  | [] -> f (pick ctx.rng flt_consts)
  | vars ->
    if Rng.int ctx.rng 5 < 3 then v (pick ctx.rng (Array.of_list vars))
    else f (pick ctx.rng flt_consts)

and call_expr ctx d fs =
  let args =
    List.mapi
      (fun k t ->
        if k = 0 && fs.fs_depth_first then i (Rng.int ctx.rng 6)
        else
          match t with
          | Ty.I64 -> int_expr ctx (min d 2)
          | Ty.F64 -> flt_expr ctx (min d 2))
      fs.fs_params
  in
  call fs.fs_name args

let expr_of ctx ty d =
  match ty with Ty.I64 -> int_expr ctx d | Ty.F64 -> flt_expr ctx d

(* A variable to assign: mostly fresh, sometimes an existing one of the same
   type.  Never a while-counter ('w'), for-loop variable ('k') or recursion
   depth ('d') — rebinding any of those could break the termination
   argument. *)
let assign_target ctx ty =
  let pool =
    (match ty with Ty.I64 -> ctx.ints | Ty.F64 -> ctx.flts)
    |> List.filter (fun x -> x.[0] <> 'w' && x.[0] <> 'k' && x.[0] <> 'd')
  in
  if pool <> [] && Rng.int ctx.rng 3 = 0 then
    pick ctx.rng (Array.of_list pool)
  else fresh ctx (match ty with Ty.I64 -> "i" | Ty.F64 -> "x")

let note_assign ctx ty x =
  match ty with
  | Ty.I64 -> if not (List.mem x ctx.ints) then ctx.ints <- x :: ctx.ints
  | Ty.F64 -> if not (List.mem x ctx.flts) then ctx.flts <- x :: ctx.flts

let edepth ctx = 1 + Rng.int ctx.rng ctx.cfg.max_expr_depth

let rec gen_stmt ctx depth : Ast.stmt list =
  ctx.budget <- ctx.budget - 1;
  let can_nest = depth > 0 && ctx.budget > 1 in
  match Rng.int ctx.rng 100 with
  | n when n < 24 ->
    let ty = if Rng.int ctx.rng 4 = 0 then Ty.F64 else Ty.I64 in
    let x = assign_target ctx ty in
    let e = expr_of ctx ty (edepth ctx) in
    note_assign ctx ty x;
    [ set x e ]
  | n when n < 42 ->
    (* Stores are over-weighted relative to a uniform mix: computed
       addresses into shared globals are what exercise the alias
       partition, the LSID relaxation and its validator. *)
    let width = pick ctx.rng [| Ty.W8; W8; W4; W2; W1 |] in
    let gl = pick ctx.rng [| g_int1; g_int1; g_int2; g_int2; g_flt |] in
    let addr = address ~width ~gl (int_expr ctx (edepth ctx)) in
    [ Ast.Store (width, addr, int_expr ctx (edepth ctx)) ]
  | n when n < 50 ->
    let addr = address ~width:Ty.W8 ~gl:g_flt (int_expr ctx (edepth ctx)) in
    [ stf addr (flt_expr ctx (edepth ctx)) ]
  | n when n < 71 && can_nest ->
    (* Both arms are usually populated: two-sided ifs become predicated
       hyperblock halves, the shape the global branch-folding pass and
       the dead-branch analysis have to be sound on. *)
    let c = int_expr ctx (edepth ctx) in
    let t = gen_body ctx (depth - 1) (1 + Rng.int ctx.rng 3) in
    let e =
      if Rng.int ctx.rng 4 < 3 then
        gen_body ctx (depth - 1) (1 + Rng.int ctx.rng 2)
      else []
    in
    [ if_ c t e ]
  | n when n < 79 && can_nest ->
    (* Bounded while: a dedicated counter strictly decreases each iteration;
       the condition may add an arbitrary early-exit conjunct. *)
    ctx.budget <- ctx.budget - 2;
    let w = fresh ctx "w" in
    let n0 = 1 + Rng.int ctx.rng 12 in
    let cond =
      if Rng.int ctx.rng 3 = 0 then (v w >: i 0) &: (int_expr ctx 2 <>: i 0)
      else v w >: i 0
    in
    let saved_i = ctx.ints and saved_f = ctx.flts in
    ctx.ints <- w :: ctx.ints;
    let body = body_stmts ctx (depth - 1) (1 + Rng.int ctx.rng 3) in
    ctx.ints <- saved_i;
    ctx.flts <- saved_f;
    [ set w (i n0); while_ cond (body @ [ set w (v w -: i 1) ]) ]
  | n when n < 92 && can_nest ->
    let k = fresh ctx "k" in
    let lo = Rng.int_in ctx.rng (-4) 8 in
    let span = 1 + Rng.int ctx.rng 16 in
    let step = pick ctx.rng [| 1L; 1L; 2L; -1L |] in
    let lo, hi = if step < 0L then (lo + span, lo) else (lo, lo + span) in
    let saved_i = ctx.ints and saved_f = ctx.flts in
    ctx.ints <- k :: ctx.ints;
    let body = body_stmts ctx (depth - 1) (1 + Rng.int ctx.rng 3) in
    ctx.ints <- saved_i;
    ctx.flts <- saved_f;
    note_assign ctx Ty.I64 k;
    [ for_step k (i lo) (i hi) step body ]
  | _ -> (
    match ctx.funcs with
    | [] ->
      let x = assign_target ctx Ty.I64 in
      let e = int_expr ctx (edepth ctx) in
      note_assign ctx Ty.I64 x;
      [ set x e ]
    | fs ->
      let s = pick ctx.rng (Array.of_list fs) in
      let e = call_expr ctx 2 s in
      if Rng.bool ctx.rng then [ Ast.Expr e ]
      else begin
        let x = assign_target ctx s.fs_ret in
        note_assign ctx s.fs_ret x;
        [ set x e ]
      end)

(* Statements for a nested body: locals introduced inside are forgotten at
   the join, matching the typechecker's conservative scoping. *)
and gen_body ctx depth n =
  let saved_i = ctx.ints and saved_f = ctx.flts in
  let body = body_stmts ctx depth n in
  ctx.ints <- saved_i;
  ctx.flts <- saved_f;
  body

and body_stmts ctx depth n =
  (* Explicit loop: the rng is mutable, so evaluation order must be fixed. *)
  let acc = ref [] in
  for _ = 1 to n do
    if ctx.budget > 0 then acc := gen_stmt ctx depth :: !acc
  done;
  List.concat (List.rev !acc)

let gen_globals rng : Ast.global list =
  let cells n k = Array.init n (fun _ -> (Ty.W8, k ())) in
  [
    Ast.global g_int1 ~init:(cells 8 (fun () -> Rng.next rng)) g_size;
    Ast.global g_int2 g_size;
    Ast.global g_flt
      ~init:
        (cells 8 (fun () ->
             Int64.bits_of_float (Rng.float rng 16.0 -. 8.0)))
      g_size;
  ]

let ret_stmt e = Ast.Return (Some e)

(* Recursive helpers take an explicit depth budget as their first parameter
   and only recurse (at most twice) in the return expression, so total call
   counts stay tiny. *)
let gen_helper ctx_rng cfg idx prev =
  let name = Printf.sprintf "f%d" idx in
  let recursive = Rng.int ctx_rng 3 > 0 in
  let ret = if Rng.int ctx_rng 3 = 0 then Ty.F64 else Ty.I64 in
  let extra_param =
    if Rng.bool ctx_rng then
      [ ((if Rng.bool ctx_rng then "a" else "b"),
         if Rng.int ctx_rng 4 = 0 then Ty.F64 else Ty.I64) ]
    else []
  in
  let params =
    if recursive then ("d", Ty.I64) :: extra_param else extra_param
  in
  let ctx =
    {
      rng = ctx_rng;
      cfg;
      fresh = 0;
      budget = 3 + Rng.int ctx_rng 4;
      funcs = prev;
      ints = List.filter_map (fun (x, t) -> if t = Ty.I64 then Some x else None) params;
      flts = List.filter_map (fun (x, t) -> if t = Ty.F64 then Some x else None) params;
      ret;
    }
  in
  let self =
    {
      fs_name = name;
      fs_params = List.map snd params;
      fs_ret = ret;
      fs_depth_first = recursive;
    }
  in
  let base = expr_of ctx ret 2 in
  let stmts = body_stmts ctx 1 (2 + Rng.int ctx_rng 3) in
  let final =
    let e = expr_of ctx ret (edepth ctx) in
    if not recursive then e
    else begin
      (* Self-call with d-1; appears once or twice in the return value. *)
      let self_call () =
        let args =
          List.mapi
            (fun k t ->
              if k = 0 then v "d" -: i 1
              else match t with
                | Ty.I64 -> int_expr ctx 2
                | Ty.F64 -> flt_expr ctx 2)
            self.fs_params
        in
        call name args
      in
      match ret with
      | Ty.I64 ->
        if Rng.int ctx.rng 3 = 0 then (self_call () +: self_call ()) ^: e
        else self_call () +: e
      | Ty.F64 -> self_call () +.: e
    end
  in
  let body =
    if recursive then
      if_ (v "d" <=: i 0) [ ret_stmt base ] [] :: stmts @ [ ret_stmt final ]
    else stmts @ [ ret_stmt final ]
  in
  (Ast.func name ~params ~ret body, self)

let gen_main rng cfg funcs =
  let ctx =
    {
      rng;
      cfg;
      fresh = 0;
      budget = max 4 (cfg.max_stmts - 4);
      funcs;
      ints = [];
      flts = [];
      ret = Ty.I64;
    }
  in
  let stmts = body_stmts ctx cfg.max_depth (cfg.max_stmts * 2) in
  (* Epilogue: checksum both integer globals into the return value so
     memory effects are visible in the result as well as the image diff. *)
  let acc = "acc" in
  let kv = "ks" in
  let epilogue =
    [
      set acc (i 0);
      for_ kv (i 0) (i (g_size / 8))
        [
          set acc
            ((v acc *: i 31)
            +: (ld8 (g g_int1 +: (v kv <<: i 3))
               ^: ld8 (g g_int2 +: (v kv <<: i 3))));
        ];
    ]
  in
  let var_mix =
    List.fold_left (fun e x -> e ^: v x) (v acc)
      (List.filteri (fun k _ -> k < 4) ctx.ints)
  in
  let flt_mix =
    match ctx.flts with
    | [] -> var_mix
    | x :: _ -> var_mix +: Ast.Un (Ast.Ftoi, v x *.: f 0.5)
  in
  Ast.func "main" ~ret:Ty.I64 (stmts @ epilogue @ [ ret flt_mix ])

let gen_program ?(cfg = default_cfg) ~seed () : Ast.program =
  let rng = Rng.create (Int64.of_int seed) in
  let globals = gen_globals rng in
  let n_funcs = Rng.int rng (cfg.max_funcs + 1) in
  let helpers = ref [] and sigs = ref [] in
  for idx = 0 to n_funcs - 1 do
    let f, s = gen_helper rng cfg idx !sigs in
    helpers := f :: !helpers;
    sigs := !sigs @ [ s ]
  done;
  let main = gen_main rng cfg !sigs in
  Ast.program ~globals (List.rev !helpers @ [ main ])
