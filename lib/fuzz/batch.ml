module Json = Trips_util.Json
module Table = Trips_util.Table
module Engine = Trips_engine.Engine

type outcome =
  | Pass
  | Invalid of string
  | Divergent of {
      d_failures : Oracle.failure list;
      d_first : Oracle.failure;
      d_shrink : Shrink.result;
    }

type row = { b_seed : int; b_size : int; b_stmts : int; b_outcome : outcome }

type t = {
  bt_seed : int;
  bt_count : int;
  bt_presets : string list;
  bt_inject : string option;
  bt_rows : row list;  (* in seed order *)
  bt_pass : int;
  bt_invalid : int;
  bt_divergent : int;
}

let run_one ?(gen_cfg = Gen.default_cfg) ?(shrink_evals = 2000)
    (oracle : Oracle.t) ~seed : row =
  let p = Gen.gen_program ~cfg:gen_cfg ~seed () in
  let b_size = Typecheck.size_program p in
  let b_stmts = Typecheck.stmt_count p in
  let b_outcome =
    match Oracle.run oracle p with
    | Oracle.Pass -> Pass
    | Oracle.Invalid m -> Invalid m
    | Oracle.Fail [] -> Invalid "empty failure list"
    | Oracle.Fail (f :: _ as fs) ->
      let sh = Shrink.shrink ~max_evals:shrink_evals oracle f p in
      Divergent { d_failures = fs; d_first = f; d_shrink = sh }
  in
  { b_seed = seed; b_size; b_stmts; b_outcome }

let assemble ~seed ~count oracle rows =
  let count_if pred = List.length (List.filter pred rows) in
  {
    bt_seed = seed;
    bt_count = count;
    bt_presets =
      List.map
        (fun (p : Trips_compiler.Driver.preset) -> p.Trips_compiler.Driver.pname)
        oracle.Oracle.presets;
    bt_inject = Option.map Oracle.inject_to_string oracle.Oracle.inject;
    bt_rows = rows;
    bt_pass = count_if (fun r -> r.b_outcome = Pass);
    bt_invalid =
      count_if (fun r -> match r.b_outcome with Invalid _ -> true | _ -> false);
    bt_divergent =
      count_if (fun r ->
          match r.b_outcome with Divergent _ -> true | _ -> false);
  }

(* Fan the seeds across the engine's worker domains as warm sub-jobs of a
   single uncached job (every program is fresh by design: no cache key, no
   memoized results — the full stack recomputes for each seed).  Distinct
   array slots make the warm tasks race-free; the engine's completion
   tracking orders every write before [assemble]. *)
let run ?workers ?gen_cfg ?shrink_evals (oracle : Oracle.t) ~seed ~count () : t
    =
  let slots = Array.make (max count 1) None in
  let warm =
    List.init count (fun i ->
        fun () ->
         slots.(i) <- Some (run_one ?gen_cfg ?shrink_evals oracle ~seed:(seed + i)))
  in
  let job =
    Engine.job ~warm ~timeout_s:14400. ~retries:0 ~id:"fuzz" (fun () ->
        Table.create [])
  in
  ignore (Engine.run ?workers [ job ]);
  (* Backfill sequentially if a warm task was lost to a crash. *)
  Array.iteri
    (fun i s ->
      if s = None then
        slots.(i) <- Some (run_one ?gen_cfg ?shrink_evals oracle ~seed:(seed + i)))
    slots;
  let rows =
    Array.to_list (Array.sub slots 0 count) |> List.filter_map (fun x -> x)
  in
  assemble ~seed ~count oracle rows

let run_seq ?gen_cfg ?shrink_evals (oracle : Oracle.t) ~seed ~count () : t =
  let rows =
    List.init count (fun i -> i)
    |> List.map (fun i -> run_one ?gen_cfg ?shrink_evals oracle ~seed:(seed + i))
  in
  assemble ~seed ~count oracle rows

let divergences t =
  List.filter_map
    (fun r ->
      match r.b_outcome with
      | Divergent d -> Some (r, d.d_first, d.d_shrink)
      | _ -> None)
    t.bt_rows

let to_json (t : t) : Json.t =
  let row_json r =
    let base =
      [ ("seed", Json.Int r.b_seed); ("size", Json.Int r.b_size);
        ("stmts", Json.Int r.b_stmts) ]
    in
    match r.b_outcome with
    | Pass -> Json.Obj (base @ [ ("outcome", Json.Str "pass") ])
    | Invalid m ->
      Json.Obj (base @ [ ("outcome", Json.Str "invalid"); ("reason", Json.Str m) ])
    | Divergent d ->
      Json.Obj
        (base
        @ [
            ("outcome", Json.Str "divergent");
            ("check", Json.Str d.d_first.f_check);
            ("config", Json.Str d.d_first.f_config);
            ("detail", Json.Str d.d_first.f_detail);
            ("failures", Json.Int (List.length d.d_failures));
            ("shrunk_size", Json.Int d.d_shrink.Shrink.sh_size);
            ( "shrunk_stmts",
              Json.Int (Typecheck.stmt_count d.d_shrink.Shrink.sh_program) );
            ("shrink_steps", Json.Int d.d_shrink.Shrink.sh_steps);
            ("shrink_evals", Json.Int d.d_shrink.Shrink.sh_evals);
          ])
  in
  Json.Obj
    [
      ("seed", Json.Int t.bt_seed);
      ("count", Json.Int t.bt_count);
      ("presets", Json.List (List.map (fun p -> Json.Str p) t.bt_presets));
      ( "inject",
        match t.bt_inject with None -> Json.Null | Some k -> Json.Str k );
      ( "summary",
        Json.Obj
          [
            ("pass", Json.Int t.bt_pass);
            ("invalid", Json.Int t.bt_invalid);
            ("divergent", Json.Int t.bt_divergent);
          ] );
      ("programs", Json.List (List.map row_json t.bt_rows));
    ]

let table (t : t) : Table.t
    =
  let tb =
    Table.create
      ~title:
        (Printf.sprintf "Differential fuzzing: seeds %d..%d x presets %s%s"
           t.bt_seed
           (t.bt_seed + t.bt_count - 1)
           (String.concat "/" t.bt_presets)
           (match t.bt_inject with
           | None -> ""
           | Some k -> Printf.sprintf " (injected %s)" k))
      [
        ("seed", Table.Right); ("size", Table.Right); ("stmts", Table.Right);
        ("outcome", Table.Left); ("detail", Table.Left);
      ]
  in
  let total_size = List.fold_left (fun n r -> n + r.b_size) 0 t.bt_rows in
  List.iter
    (fun r ->
      match r.b_outcome with
      | Pass -> ()
      | Invalid m ->
        Table.add_row tb
          [ string_of_int r.b_seed; string_of_int r.b_size;
            string_of_int r.b_stmts; "invalid"; m ]
      | Divergent d ->
        Table.add_row tb
          [
            string_of_int r.b_seed; string_of_int r.b_size;
            string_of_int r.b_stmts;
            Printf.sprintf "DIVERGENT %s/%s" d.d_first.f_check d.d_first.f_config;
            Printf.sprintf "shrunk %d -> %d nodes; %s"
              d.d_shrink.Shrink.sh_orig_size d.d_shrink.Shrink.sh_size
              d.d_first.f_detail;
          ])
    t.bt_rows;
  Table.add_row tb
    [
      "all"; string_of_int total_size; "";
      Printf.sprintf "%d pass / %d invalid / %d divergent" t.bt_pass
        t.bt_invalid t.bt_divergent;
      "";
    ];
  tb
