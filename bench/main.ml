(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (sections 4-6) and then runs one Bechamel micro-benchmark per
   experiment over the simulator primitive that dominates it.

   Usage:
     bench/main.exe                 -- experiments + engine + sim + micro
     bench/main.exe fig3 fig11      -- just those experiments
     bench/main.exe --no-micro      -- skip the Bechamel suite
     bench/main.exe --no-engine     -- skip the parallel-engine comparison
     bench/main.exe --no-sim        -- skip the sim-throughput sweep

   The engine phase re-runs the selected experiments under the Domain pool
   (cold memo tables, 4 workers), checks the rendered tables are
   byte-identical to the sequential pass, and writes BENCH_engine.json.

   The sim phase times one sequential cycle-simulator sweep of the full
   workload registry per preset and writes BENCH_sim.json with the
   throughput and its speedup over the recorded seed baseline (the frozen
   Core_ref simulator; see bench/BENCH_sim.json for the committed record
   and the thresholds check.sh gates on). *)

open Trips_harness
module Engine = Trips_engine.Engine
module Json = Trips_util.Json

let run_experiment (e : Experiments.experiment) =
  Printf.printf "\n=== %s: %s ===\n" e.Experiments.id e.Experiments.title;
  Printf.printf "Paper: %s\n\n" e.Experiments.paper_claim;
  let t0 = Unix.gettimeofday () in
  let table = e.Experiments.run () in
  let dt = Unix.gettimeofday () -. t0 in
  Trips_util.Table.print table;
  Printf.printf "(generated in %.1fs)\n%!" dt;
  (e.Experiments.id, Trips_util.Table.render table, dt)

(* ------------------------------------------------------------------ *)
(* Engine comparison: sequential vs parallel wall-clock                 *)
(* ------------------------------------------------------------------ *)

let engine_jobs = 4

let run_engine_comparison experiments sequential =
  let seq_s =
    List.fold_left (fun acc (_, _, dt) -> acc +. dt) 0. sequential
  in
  Printf.printf
    "\n=== engine: re-running %d experiment(s) under %d worker domains ===\n%!"
    (List.length experiments) engine_jobs;
  (* cold memo tables, else the parallel pass would measure nothing *)
  Platforms.clear_caches ();
  let report =
    Engine.run ~workers:engine_jobs (List.map Experiments.to_job experiments)
  in
  let identical =
    List.for_all2
      (fun (id, rendered, _) (r : Engine.job_report) ->
        match r.Engine.outcome with
        | Engine.Finished table ->
          let same = Trips_util.Table.render table = rendered in
          if not same then
            Printf.printf "!!! %s: parallel run differs from sequential\n" id;
          same
        | Engine.Failed { error; _ } ->
          Printf.printf "!!! %s: failed under the engine: %s\n" id error;
          false)
      sequential report.Engine.job_reports
  in
  let json =
    Json.Obj
      [
        ("jobs", Json.Int engine_jobs);
        ("experiments", Json.Int (List.length experiments));
        ("sequential_s", Json.Float seq_s);
        ("parallel_s", Json.Float report.Engine.wall_s);
        ( "speedup",
          Json.Float
            (if report.Engine.wall_s > 0. then seq_s /. report.Engine.wall_s
             else 0.) );
        ("identical", Json.Bool identical);
        ("worker_utilization", Json.Float (Engine.utilization report));
        ( "per_experiment",
          Json.List
            (List.map2
               (fun (id, _, dt) (r : Engine.job_report) ->
                 Json.Obj
                   [
                     ("id", Json.Str id);
                     ("sequential_s", Json.Float dt);
                     ("parallel_work_s", Json.Float r.Engine.work_s);
                   ])
               sequential report.Engine.job_reports) );
      ]
  in
  let oc = open_out "BENCH_engine.json" in
  output_string oc (Json.to_string json);
  close_out oc;
  Printf.printf
    "engine: sequential %.1fs, parallel %.1fs (x%.2f), tables %s -> BENCH_engine.json\n%!"
    seq_s report.Engine.wall_s
    (if report.Engine.wall_s > 0. then seq_s /. report.Engine.wall_s else 0.)
    (if identical then "byte-identical" else "DIFFER");
  identical

(* ------------------------------------------------------------------ *)
(* Cycle-simulator throughput: sequential full-registry sweep          *)
(* ------------------------------------------------------------------ *)

(* Seed-simulator throughput on the C-preset full-registry sweep,
   recorded in-process (CPU time) by `trips_run simbench --preset C
   --compare-ref` on the machine that produced bench/BENCH_sim.json.
   CPU time is used throughout so background load on shared machines
   cancels out of the ratio. *)
let seed_blocks_per_s = 43774.

let run_sim_throughput () =
  let module Registry = Trips_workloads.Registry in
  let module Image = Trips_tir.Image in
  let module Ast = Trips_tir.Ast in
  let module Core = Trips_sim.Core in
  Printf.printf
    "\n=== sim: sequential cycle-simulator sweep, full registry ===\n%!";
  let sweep quality =
    let jobs =
      List.map
        (fun (b : Registry.bench) ->
          ( Platforms.edge_program quality b,
            Image.build b.Registry.program.Ast.globals ))
        Registry.all
    in
    let w0 = Unix.gettimeofday () in
    let c0 = Sys.time () in
    let blocks =
      List.fold_left
        (fun acc (prog, image) ->
          let r = Core.run prog image ~entry:"main" ~args:[] in
          acc + r.Core.timing.Core.blocks)
        0 jobs
    in
    (blocks, Unix.gettimeofday () -. w0, Sys.time () -. c0)
  in
  let presets = [ ("C", Platforms.C); ("H", Platforms.H) ] in
  let rows =
    List.map
      (fun (name, q) ->
        let blocks, wall, cpu = sweep q in
        let bps = if cpu > 0. then float_of_int blocks /. cpu else 0. in
        Printf.printf
          "  preset %s: %d block instances, %.2fs wall (%.2fs cpu), %.0f blocks/s\n%!"
          name blocks wall cpu bps;
        (name, blocks, wall, cpu, bps))
      presets
  in
  let c_bps =
    match List.find_opt (fun (n, _, _, _, _) -> n = "C") rows with
    | Some (_, _, _, _, bps) -> bps
    | None -> 0.
  in
  let speedup = c_bps /. seed_blocks_per_s in
  let json =
    Json.Obj
      [
        ( "description",
          Json.Str
            "Sequential cycle-simulator sweep of the full workload registry \
             per preset (blocks/s over CPU time). speedup_vs_seed_baseline \
             compares preset C against the recorded seed (Core_ref) \
             throughput; the committed bench/BENCH_sim.json carries the \
             thresholds check.sh gates on." );
        ("seed_blocks_per_s", Json.Float seed_blocks_per_s);
        ("speedup_vs_seed_baseline", Json.Float speedup);
        ( "per_preset",
          Json.List
            (List.map
               (fun (name, blocks, wall, cpu, bps) ->
                 Json.Obj
                   [
                     ("preset", Json.Str name);
                     ("blocks", Json.Int blocks);
                     ("wall_s", Json.Float wall);
                     ("cpu_s", Json.Float cpu);
                     ("blocks_per_s", Json.Float bps);
                   ])
               rows) );
      ]
  in
  let oc = open_out "BENCH_sim.json" in
  output_string oc (Json.to_string json);
  close_out oc;
  Printf.printf
    "sim: preset C %.0f blocks/s, x%.2f vs seed baseline -> BENCH_sim.json\n%!"
    c_bps speedup

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per table/figure                     *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let module Registry = Trips_workloads.Registry in
  let module Image = Trips_tir.Image in
  let module Ast = Trips_tir.Ast in
  let fft = Registry.find "fft" in
  let a2time = Registry.find "a2time" in
  let edge_prog = Platforms.edge_program Platforms.C a2time in
  let edge_small = Platforms.edge_program Platforms.C fft in
  let risc_prog = Trips_risc.Codegen.compile a2time.Registry.program in
  let mk name f = Test.make ~name (Staged.stage f) in
  [
    mk "table1/table-render" (fun () ->
        ignore (Trips_util.Table.render (Perf_figs.table1 ())));
    mk "fig3/edge-functional-exec" (fun () ->
        let image = Image.build a2time.Registry.program.Ast.globals in
        ignore (Trips_edge.Exec.run edge_prog image ~entry:"main" ~args:[]));
    mk "fig4/risc-exec" (fun () ->
        let image = Image.build a2time.Registry.program.Ast.globals in
        ignore (Trips_risc.Exec.run risc_prog image ~entry:"main" ~args:[]));
    mk "fig5/edge-compile" (fun () ->
        ignore
          (Trips_compiler.Driver.compile Trips_compiler.Driver.compiled
             fft.Registry.program));
    mk "codesize/risc-compile" (fun () ->
        ignore (Trips_risc.Codegen.compile fft.Registry.program));
    mk "fig6/cycle-sim" (fun () ->
        let image = Image.build fft.Registry.program.Ast.globals in
        ignore (Trips_sim.Core.run edge_small image ~entry:"main" ~args:[]));
    mk "fig7/block-predictor" (fun () ->
        let p = Trips_predictor.Blockpred.create Trips_predictor.Blockpred.prototype in
        for b = 0 to 999 do
          ignore (Trips_predictor.Blockpred.predict p ~block:b);
          Trips_predictor.Blockpred.update p
            { Trips_predictor.Blockpred.o_block = b; o_exit = b land 3;
              o_kind = Trips_predictor.Blockpred.Kjump; o_target = b + 1;
              o_fallthrough = 0 }
        done);
    mk "fig8/opn-send" (fun () ->
        let opn = Trips_noc.Opn.create () in
        for k = 0 to 999 do
          ignore
            (Trips_noc.Opn.send opn ~src:(1, 1) ~dst:(4, 4) Trips_noc.Opn.Et_et
               ~now:k)
        done);
    mk "fig9/ideal-sim" (fun () ->
        let image = Image.build fft.Registry.program.Ast.globals in
        ignore (Trips_limit.Ideal.run edge_small image ~entry:"main" ~args:[]));
    mk "fig11/ooo-sim" (fun () ->
        let image = Image.build a2time.Registry.program.Ast.globals in
        ignore
          (Trips_superscalar.Ooo.run Trips_superscalar.Ooo.core2 risc_prog image
             ~entry:"main" ~args:[]));
    mk "table3/cache-access" (fun () ->
        let c = Trips_mem.Cache.create Trips_mem.Cache.trips_l1d in
        for k = 0 to 999 do
          ignore (Trips_mem.Cache.access c ~addr:(k * 64) ~write:false)
        done);
    mk "flops/semantics-fadd" (fun () ->
        ignore
          (Trips_tir.Semantics.binop Trips_tir.Ast.Fadd (Trips_tir.Ty.Vf 1.5)
             (Trips_tir.Ty.Vf 2.5)));
  ]

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  print_endline "\n=== Bechamel micro-benchmarks (ns per run) ===";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"" [ test ]) in
      let ols =
        Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
      in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-32s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-32s (no estimate)\n%!" name)
        analysis)
    (micro_tests ())

let () =
  (* match trips_run: a larger minor heap for the token-allocating emulator *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let args = Array.to_list Sys.argv |> List.tl in
  let no_micro = List.mem "--no-micro" args in
  let no_engine = List.mem "--no-engine" args in
  let no_sim = List.mem "--no-sim" args in
  let ids =
    List.filter
      (fun a -> a <> "--no-micro" && a <> "--no-engine" && a <> "--no-sim")
      args
  in
  let experiments =
    match ids with
    | [] -> Experiments.all
    | ids -> List.map Experiments.find ids
  in
  Printf.printf
    "TRIPS evaluation reproduction -- %d experiment(s); see EXPERIMENTS.md for the \
     paper-vs-measured record.\n"
    (List.length experiments);
  let sequential = List.map run_experiment experiments in
  let identical =
    if no_engine then true else run_engine_comparison experiments sequential
  in
  if not no_sim then run_sim_throughput ();
  if not no_micro then run_micro ();
  if not identical then exit 1
