(* Closed-loop load benchmark for the trips_serve daemon.

   Three phases against in-process servers (no process management, so the
   same binary runs under CI):

   - dedup: a burst of identical concurrent requests against a 1-worker
     cold server; exactly one job computes, the rest coalesce onto it or
     hit the cache it fills.
   - levels: a warmed 4-worker server swept at increasing concurrency
     over a mixed verb/bench spec list; throughput and latency
     percentiles per level.
   - shed: 32 concurrent *distinct* cold requests against a 1-worker,
     2-deep-queue server; the overflow must come back as explicit 429s,
     not hang.

   Output: a JSON report (default _results/serve-report.json) gated by
   check.sh against the thresholds committed in bench/BENCH_serve.json. *)

module Json = Trips_util.Json
module Server = Trips_serve.Server
module Client = Trips_serve.Client
module Load = Trips_serve.Load
module Protocol = Trips_serve.Protocol
module Service = Trips_harness.Service
module Pool = Trips_engine.Pool
module Registry = Trips_workloads.Registry

let host = "127.0.0.1"

let temp_dir prefix =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d" prefix (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let spec verb bench preset =
  match Service.make ~mode:"" ~verb ~bench ~preset with
  | Result.Ok r ->
    {
      Load.s_path = Protocol.api_prefix ^ verb;
      Load.s_body = Protocol.run_request_body r;
    }
  | Result.Error msg -> failwith (verb ^ "/" ^ bench ^ ": " ^ msg)

(* -- phase 1: in-flight dedup ---------------------------------------- *)

(* One worker, cold cache, [burst] identical concurrent requests: the
   first admitted computes; everything arriving while it is queued or
   running coalesces; anything after completion hits the cache it wrote.
   computed stays 1 either way. *)
let run_dedup ~burst =
  let dir = temp_dir "trips-serve-dedup" in
  let t =
    Server.start
      {
        Server.default_config with
        Server.workers = 1;
        queue_capacity = 16;
        cache_dir = Some dir;
      }
  in
  let port = Server.port t in
  let s = spec "simulate" "fft" "C" in
  let oks = Atomic.make 0 and bad = Atomic.make 0 in
  let threads =
    List.init burst (fun _ ->
        Thread.create
          (fun () ->
            match Client.post_json ~host ~port s.Load.s_path s.Load.s_body with
            | Result.Ok { Trips_serve.Http.status = 200; _ } ->
              Atomic.incr oks
            | _ -> Atomic.incr bad)
          ())
  in
  List.iter Thread.join threads;
  let st = Server.pool_stats t in
  Server.stop t;
  rm_rf dir;
  let computed = st.Pool.executed in
  let coalesced = st.Pool.coalesced in
  let cache_hits = st.Pool.cache_hits in
  Printf.eprintf
    "dedup: %d identical requests -> %d computed, %d coalesced, %d cache \
     hits, %d failed\n%!"
    burst computed coalesced cache_hits (Atomic.get bad);
  Json.Obj
    [
      ("requests", Json.Int burst);
      ("ok", Json.Int (Atomic.get oks));
      ("failed", Json.Int (Atomic.get bad));
      ("computed", Json.Int computed);
      ("coalesced", Json.Int coalesced);
      ("cache_hits", Json.Int cache_hits);
      ( "coalesce_rate",
        Json.Float (float_of_int coalesced /. float_of_int burst) );
    ]

(* -- phase 2: throughput/latency sweep ------------------------------- *)

let level_specs () =
  (* a mixed read-mostly workload over the first few registry benches;
     lint/compile/timing are cheap enough to sweep at depth *)
  let benches =
    List.filteri (fun i _ -> i < 4) Registry.all
    |> List.map (fun (b : Registry.bench) -> b.Registry.name)
  in
  List.concat_map
    (fun b -> [ spec "timing" b "C"; spec "lint" b "C"; spec "compile" b "C" ])
    benches

let run_levels ~levels ~repeat =
  let dir = temp_dir "trips-serve-levels" in
  let t =
    Server.start
      {
        Server.default_config with
        Server.workers = 4;
        queue_capacity = 256;
        cache_dir = Some dir;
      }
  in
  let port = Server.port t in
  let specs = level_specs () in
  (* warm: every spec once, so the sweep measures the steady state the
     daemon actually serves (cache + memo warm), not first-touch cost *)
  List.iter
    (fun (s : Load.spec) ->
      ignore (Client.post_json ~host ~port s.Load.s_path s.Load.s_body))
    specs;
  let results =
    List.map
      (fun concurrency ->
        let l = Load.run_level ~host ~port ~concurrency ~repeat specs in
        Printf.eprintf
          "level c=%-3d %d requests  %.0f req/s  p50 %.4fs  p99 %.4fs  (%d \
           shed, %d failed)\n%!"
          concurrency l.Load.requests l.Load.throughput_rps
          (Trips_util.Histogram.quantile l.Load.hist 0.5)
          (Trips_util.Histogram.quantile l.Load.hist 0.99)
          l.Load.shed l.Load.failed;
        l)
      levels
  in
  let st = Server.pool_stats t in
  Server.stop t;
  rm_rf dir;
  (results, st)

(* -- phase 3: saturation shed ---------------------------------------- *)

let shed_specs () =
  (* distinct cold keys: every verb x the first benches x both qualities,
     trimmed to 32 *)
  let benches =
    List.map (fun (b : Registry.bench) -> b.Registry.name) Registry.all
  in
  let all =
    List.concat_map
      (fun b ->
        List.concat_map
          (fun v -> [ spec v b "C"; spec v b "H" ])
          [ "simulate"; "timing"; "compile"; "lint"; "transval" ])
      benches
  in
  List.filteri (fun i _ -> i < 32) all

let run_shed () =
  let t =
    Server.start
      {
        Server.default_config with
        Server.workers = 1;
        queue_capacity = 2;
        cache_dir = None;
      }
  in
  let port = Server.port t in
  let specs = shed_specs () in
  let ok = Atomic.make 0 and shed = Atomic.make 0 and other = Atomic.make 0 in
  let threads =
    List.map
      (fun (s : Load.spec) ->
        Thread.create
          (fun () ->
            match Client.post_json ~host ~port s.Load.s_path s.Load.s_body with
            | Result.Ok { Trips_serve.Http.status = 200; _ } -> Atomic.incr ok
            | Result.Ok { Trips_serve.Http.status = 429; _ } ->
              Atomic.incr shed
            | _ -> Atomic.incr other)
          ())
      specs
  in
  List.iter Thread.join threads;
  let st = Server.pool_stats t in
  Server.stop t;
  Printf.eprintf "shed: %d distinct requests -> %d ok, %d shed, %d other\n%!"
    (List.length specs) (Atomic.get ok) (Atomic.get shed) (Atomic.get other);
  Json.Obj
    [
      ("requests", Json.Int (List.length specs));
      ("ok", Json.Int (Atomic.get ok));
      ("shed", Json.Int (Atomic.get shed));
      ("other", Json.Int (Atomic.get other));
      ("pool_shed", Json.Int st.Pool.shed);
    ]

(* -- driver ----------------------------------------------------------- *)

let () =
  let out = ref "_results/serve-report.json" in
  let repeat = ref 20 in
  let burst = ref 16 in
  let levels = ref [ 1; 4; 8 ] in
  let set_levels s =
    levels := List.map int_of_string (String.split_on_char ',' s)
  in
  Arg.parse
    [
      ("--out", Arg.Set_string out, "FILE  report path");
      ("--repeat", Arg.Set_int repeat, "N  requests per client per level");
      ("--burst", Arg.Set_int burst, "N  identical requests in dedup phase");
      ("--levels", Arg.String set_levels, "C1,C2,...  concurrency levels");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "serve_bench: closed-loop load benchmark for trips_serve";
  let dedup = run_dedup ~burst:!burst in
  let level_results, pool = run_levels ~levels:!levels ~repeat:!repeat in
  let shed = run_shed () in
  let peak =
    List.fold_left
      (fun best (l : Load.level) ->
        match best with
        | Some (b : Load.level) when b.Load.throughput_rps >= l.Load.throughput_rps
          -> best
        | _ -> Some l)
      None level_results
  in
  let peak_tp, peak_p50, peak_p99 =
    match peak with
    | None -> (0., 0., 0.)
    | Some l ->
      ( l.Load.throughput_rps,
        Trips_util.Histogram.quantile l.Load.hist 0.5,
        Trips_util.Histogram.quantile l.Load.hist 0.99 )
  in
  let total_level_reqs =
    List.fold_left (fun a (l : Load.level) -> a + l.Load.requests) 0
      level_results
  in
  let report =
    Json.Obj
      [
        ("schema", Json.Int 1);
        ("dedup", dedup);
        ("levels", Json.List (List.map Load.level_json level_results));
        ("shed", shed);
        ("peak_throughput_rps", Json.Float peak_tp);
        ("peak_p50_s", Json.Float peak_p50);
        ("peak_p99_s", Json.Float peak_p99);
        ( "sweep_cache_hit_rate",
          Json.Float
            (if total_level_reqs = 0 then 0.
             else
               float_of_int (pool.Pool.cache_hits + pool.Pool.coalesced)
               /. float_of_int pool.Pool.submitted) );
      ]
  in
  let dir = Filename.dirname !out in
  if dir <> "." && not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let oc = open_out !out in
  output_string oc (Json.to_string report);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "report: %s\n%!" !out
