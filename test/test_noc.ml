(* Operand-network unit tests: routing geometry, dimension order, per-link
   single-occupancy contention, and state reset.  [Opn.send] traverses the
   path of [Opn.route] in place, so these tests pin both the declarative
   path and the allocation-free walk against each other. *)

module Opn = Trips_noc.Opn

let positions =
  (* every mesh coordinate of the 5x5 OPN *)
  List.concat_map (fun r -> List.init 5 (fun c -> (r, c))) (List.init 5 Fun.id)

(* Route length equals the Manhattan distance, for every src/dst pair. *)
let test_route_length () =
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          let h = Opn.hops ~src ~dst in
          Alcotest.(check int)
            (Printf.sprintf "hops %s->%s"
               (fst src |> string_of_int)
               (fst dst |> string_of_int))
            h
            (List.length (Opn.route src dst)))
        positions)
    positions

(* Dimension order: the Y (row) hops all come before the X (column) hops,
   each step moves one hop toward the destination, and the claimed links
   start at the nodes actually visited. *)
let test_route_dimension_order () =
  List.iter
    (fun ((r1, c1) as src) ->
      List.iter
        (fun ((r2, c2) as dst) ->
          let steps = Opn.route src dst in
          let r = ref r1 and c = ref c1 and in_x = ref false in
          List.iter
            (fun (n, dir) ->
              Alcotest.(check int) "link starts at current node" (Opn.node !r !c) n;
              (match dir with
              | 0 | 1 ->
                Alcotest.(check bool) "row hops precede column hops" false !in_x;
                r := if dir = 1 then !r + 1 else !r - 1
              | 2 | 3 ->
                in_x := true;
                c := if dir = 2 then !c + 1 else !c - 1
              | _ -> Alcotest.fail "invalid direction");
              Alcotest.(check bool) "stays on the mesh" true
                (!r >= 0 && !r < 5 && !c >= 0 && !c < 5))
            steps;
          Alcotest.(check (pair int int)) "path ends at dst" (r2, c2) (!r, !c))
        positions)
    positions

(* Uncontended latency: one cycle per hop. *)
let test_uncontended_latency () =
  let t = Opn.create () in
  let arrival = Opn.send t ~src:(1, 1) ~dst:(3, 4) Opn.Et_et ~now:10 in
  Alcotest.(check int) "1 cycle per hop" (10 + Opn.hops ~src:(1, 1) ~dst:(3, 4)) arrival;
  let local = Opn.send t ~src:(2, 2) ~dst:(2, 2) Opn.Et_et ~now:7 in
  Alcotest.(check int) "local bypass is free" 7 local

(* Each link carries one operand per cycle: two messages entering the same
   link on the same cycle serialize; the contention counter records the
   stall. *)
let test_link_single_occupancy () =
  let t = Opn.create () in
  let a = Opn.send t ~src:(2, 1) ~dst:(2, 2) Opn.Et_et ~now:5 in
  Alcotest.(check int) "first message unimpeded" 6 a;
  let b = Opn.send t ~src:(2, 1) ~dst:(2, 2) Opn.Et_et ~now:5 in
  Alcotest.(check int) "second message waits one cycle" 7 b;
  let c = Opn.send t ~src:(2, 1) ~dst:(2, 2) Opn.Et_et ~now:5 in
  Alcotest.(check int) "third message waits two cycles" 8 c;
  Alcotest.(check int) "contention cycles recorded" 3
    (Opn.profile t).Opn.contention_cycles;
  (* a different link on the same cycle is independent *)
  let d = Opn.send t ~src:(2, 3) ~dst:(2, 4) Opn.Et_et ~now:5 in
  Alcotest.(check int) "other links unaffected" 6 d

(* Messages claiming the same link at different cycles do not contend,
   including out-of-order claim times (the simulator walks dataflow order,
   not time order). *)
let test_link_disjoint_times () =
  let t = Opn.create () in
  let a = Opn.send t ~src:(0, 0) ~dst:(0, 1) Opn.Et_et ~now:20 in
  let b = Opn.send t ~src:(0, 0) ~dst:(0, 1) Opn.Et_et ~now:3 in
  Alcotest.(check int) "later claim keeps its slot" 21 a;
  Alcotest.(check int) "earlier claim unaffected" 4 b;
  Alcotest.(check int) "no contention" 0 (Opn.profile t).Opn.contention_cycles

(* A multi-hop message occupies consecutive links on consecutive cycles;
   a second message chasing it one cycle later never catches up. *)
let test_pipelined_hops () =
  let t = Opn.create () in
  let a = Opn.send t ~src:(1, 0) ~dst:(1, 3) Opn.Et_et ~now:0 in
  let b = Opn.send t ~src:(1, 0) ~dst:(1, 3) Opn.Et_et ~now:1 in
  Alcotest.(check int) "head message" 3 a;
  Alcotest.(check int) "chaser stays one behind" 4 b;
  Alcotest.(check int) "pipelining causes no contention" 0
    (Opn.profile t).Opn.contention_cycles

(* [reset] restores a fresh network: occupancy and the whole profile. *)
let test_reset () =
  let t = Opn.create () in
  ignore (Opn.send t ~src:(0, 0) ~dst:(4, 4) Opn.Et_dt ~now:0);
  ignore (Opn.send t ~src:(0, 0) ~dst:(4, 4) Opn.Et_dt ~now:0);
  let p = Opn.profile t in
  Alcotest.(check bool) "profile non-empty before reset" true
    (p.Opn.total_packets > 0 && p.Opn.total_hops > 0
    && p.Opn.contention_cycles > 0);
  Opn.reset t;
  Alcotest.(check int) "packets cleared" 0 p.Opn.total_packets;
  Alcotest.(check int) "hops cleared" 0 p.Opn.total_hops;
  Alcotest.(check int) "contention cleared" 0 p.Opn.contention_cycles;
  Array.iter
    (fun row ->
      Array.iter (fun v -> Alcotest.(check int) "histogram cleared" 0 v) row)
    p.Opn.packets;
  (* links are free again: the same double-send no longer sees the old
     occupancy *)
  let a = Opn.send t ~src:(0, 0) ~dst:(0, 1) Opn.Gt_any ~now:0 in
  Alcotest.(check int) "occupancy cleared" 1 a

let () =
  Alcotest.run "noc"
    [
      ( "opn",
        [
          Alcotest.test_case "route length = Manhattan hops" `Quick
            test_route_length;
          Alcotest.test_case "dimension-ordered (Y then X)" `Quick
            test_route_dimension_order;
          Alcotest.test_case "uncontended latency" `Quick
            test_uncontended_latency;
          Alcotest.test_case "per-link single occupancy" `Quick
            test_link_single_occupancy;
          Alcotest.test_case "disjoint times do not contend" `Quick
            test_link_disjoint_times;
          Alcotest.test_case "hops pipeline" `Quick test_pipelined_hops;
          Alcotest.test_case "reset restores fresh state" `Quick test_reset;
        ] );
    ]
