(* Translation validator: seeded miscompiles must be refuted with the
   guilty pass named, and the untouched pipeline must come back clean.

   Each mutation edits one pass's output inside a compilation witness and
   re-runs the corresponding checker (or the whole per-function validation
   when attribution across checkers is the point).  The clean-sweep test
   is the no-false-positive half: every Simple-suite benchmark at the
   compiled preset, on both backends, with zero refutations. *)

module Ast = Trips_tir.Ast
module Cfg = Trips_tir.Cfg
module Lower = Trips_tir.Lower
module Opt = Trips_tir.Opt
module Transform = Trips_tir.Transform
module Image = Trips_tir.Image
module Block = Trips_edge.Block
module Isa = Trips_edge.Isa
module H = Trips_compiler.Hyperblock
module Driver = Trips_compiler.Driver
module Witness = Trips_compiler.Witness
module T = Trips_analysis.Transval
module Diag = Trips_analysis.Diag
module Registry = Trips_workloads.Registry
module Cg = Trips_risc.Codegen
module Risa = Trips_risc.Isa

let copy_func (f : Cfg.func) : Cfg.func =
  { f with Cfg.blocks = List.map (fun (b : Cfg.block) -> { b with Cfg.ins = b.ins }) f.blocks }

let sym_of layout s =
  match List.assoc_opt s layout with Some a -> Int64.of_int a | None -> 0L

(* Witnessed compilation of one benchmark, mirroring Driver.run_validation
   so mutation tests can edit the intermediates before checking. *)
let witnesses preset name =
  let b = Registry.find name in
  let p = b.Registry.program in
  let p = if preset.Driver.inline_pass then Transform.inline p else p in
  let p =
    if preset.Driver.unroll > 1 then Transform.unroll_program ~factor:preset.Driver.unroll p
    else p
  in
  let cfg = Lower.program p in
  if preset.Driver.optimize then Opt.run_program cfg;
  let layout = Image.layout cfg.Cfg.globals in
  (sym_of layout, List.map (fun f -> snd (Driver.compile_func_wit preset ~layout f)) cfg.Cfg.funcs)

let refuted_stages reports =
  List.sort_uniq compare
    (List.filter_map
       (fun (r : T.report) ->
         if r.T.r_verdict = T.Vrefuted then Some r.T.r_stage else None)
       reports)

let expect_refuted what stage reports =
  match refuted_stages reports with
  | [] -> Alcotest.failf "%s: miscompile not refuted" what
  | ss ->
    if not (List.mem stage ss) then
      Alcotest.failf "%s: refuted in %s, expected %s" what (String.concat "," ss)
        stage

let expect_only what stage reports =
  expect_refuted what stage reports;
  match List.filter (fun s -> s <> stage) (refuted_stages reports) with
  | [] -> ()
  | ss ->
    Alcotest.failf "%s: collateral refutation in %s" what (String.concat "," ss)

(* -- optimization ---------------------------------------------------- *)

let opt_setup name =
  let b = Registry.find name in
  let cfg = Lower.program b.Registry.program in
  let pres = List.map copy_func cfg.Cfg.funcs in
  Opt.run_program cfg;
  (sym_of (Image.layout cfg.Cfg.globals), pres, cfg.Cfg.funcs)

let test_opt_const () =
  let sym, pres, posts = opt_setup "ct" in
  let hit = ref false in
  let perturb i =
    if !hit then i
    else
      Cfg.map_ins_operands
        (fun o ->
          match o with
          | Cfg.Ci n when not !hit ->
            hit := true;
            Cfg.Ci (Int64.add n 1L)
          | o -> o)
        i
  in
  List.iter
    (fun (f : Cfg.func) ->
      List.iter
        (fun (bl : Cfg.block) ->
          if not !hit then bl.Cfg.ins <- List.map perturb bl.Cfg.ins)
        f.Cfg.blocks)
    posts;
  if not !hit then Alcotest.fail "no integer constant to perturb";
  let reports =
    List.concat
      (List.map2
         (fun pre (post : Cfg.func) -> T.check_opt ~sym ~fname:post.Cfg.name pre post)
         pres posts)
  in
  expect_only "perturbed constant" "opt" reports

let test_opt_branch_swap () =
  let sym, pres, posts = opt_setup "ct" in
  let hit = ref false in
  List.iter
    (fun (f : Cfg.func) ->
      List.iter
        (fun (bl : Cfg.block) ->
          if not !hit then
            match bl.Cfg.term with
            | Cfg.Br (c, l1, l2) when l1 <> l2 ->
              hit := true;
              bl.Cfg.term <- Cfg.Br (c, l2, l1)
            | _ -> ())
        f.Cfg.blocks)
    posts;
  if not !hit then Alcotest.fail "no two-way branch to swap";
  let reports =
    List.concat
      (List.map2
         (fun pre (post : Cfg.func) -> T.check_opt ~sym ~fname:post.Cfg.name pre post)
         pres posts)
  in
  expect_only "swapped branch arms" "opt" reports

(* -- block splitting -------------------------------------------------- *)

let test_split_drop () =
  let _, wits = witnesses Driver.compiled "ct" in
  let hit = ref false in
  List.iter
    (fun (w : Driver.witness) ->
      List.iter
        (fun (bl : Cfg.block) ->
          if (not !hit) && bl.Cfg.ins <> [] then begin
            hit := true;
            bl.Cfg.ins <- List.tl bl.Cfg.ins
          end)
        w.Driver.w_split.Cfg.blocks)
    wits;
  if not !hit then Alcotest.fail "no instruction to drop";
  let reports =
    List.concat_map
      (fun (w : Driver.witness) ->
        Witness.check_split ~fname:w.Driver.w_fn.Cfg.name w.Driver.w_fn
          w.Driver.w_split)
      wits
  in
  expect_only "dropped instruction" "split" reports

(* -- hyperblock formation --------------------------------------------- *)

let rec mutate_items f = function
  | [] -> None
  | it :: rest -> (
    match f it with
    | Some it' -> Some (it' :: rest)
    | None -> (
      match it with
      | H.If (c, t, e) -> (
        match mutate_items f t with
        | Some t' -> Some (H.If (c, t', e) :: rest)
        | None -> (
          match mutate_items f e with
          | Some e' -> Some (H.If (c, t, e') :: rest)
          | None -> Option.map (fun r -> it :: r) (mutate_items f rest)))
      | _ -> Option.map (fun r -> it :: r) (mutate_items f rest)))

let mutate_formation what f =
  let _, wits = witnesses Driver.compiled "ct" in
  let hit = ref false in
  let reports =
    List.concat_map
      (fun (w : Driver.witness) ->
        let hf = w.Driver.w_hf in
        let hblocks =
          List.map
            (fun (hb : H.hblock) ->
              if !hit then hb
              else
                match mutate_items f hb.H.body with
                | Some body ->
                  hit := true;
                  { hb with H.body }
                | None -> hb)
            hf.H.hblocks
        in
        Witness.check_formation ~fname:w.Driver.w_fn.Cfg.name w.Driver.w_split
          { hf with H.hblocks })
      wits
  in
  if not !hit then Alcotest.failf "%s: no mutation site" what;
  expect_only what "hyperblock" reports

let test_form_swap_arms () =
  mutate_formation "swapped if-conversion arms" (function
    | H.If (c, t, e) when t <> e -> Some (H.If (c, e, t))
    | _ -> None)

let test_form_drop_ins () =
  mutate_formation "dropped formed instruction" (function
    | H.Ins _ -> Some (H.Lbl "dropped")
    | _ -> None)

(* -- register allocation ---------------------------------------------- *)

let test_ra_write_set () =
  let _, wits = witnesses Driver.compiled "ct" in
  let hit = ref false in
  let reports =
    List.concat_map
      (fun (w : Driver.witness) ->
        let ra = w.Driver.w_ra in
        if not !hit then
          Hashtbl.iter
            (fun l ws ->
              if (not !hit) && ws <> [] then begin
                hit := true;
                Hashtbl.replace ra.Trips_compiler.Regalloc.write_set l (List.tl ws)
              end)
            ra.Trips_compiler.Regalloc.write_set;
        Witness.check_regalloc ~fname:w.Driver.w_fn.Cfg.name w.Driver.w_hf ra)
      wits
  in
  if not !hit then Alcotest.fail "no write set to shrink";
  expect_only "dropped register write" "regalloc" reports

let test_ra_collision () =
  let _, wits = witnesses Driver.compiled "ct" in
  let hit = ref false in
  let reports =
    List.concat_map
      (fun (w : Driver.witness) ->
        let ra = w.Driver.w_ra in
        if not !hit then
          Hashtbl.iter
            (fun _l vs ->
              if not !hit then
                match vs with
                | v1 :: v2 :: _
                  when Hashtbl.find_opt ra.Trips_compiler.Regalloc.assign v1
                       <> Hashtbl.find_opt ra.Trips_compiler.Regalloc.assign v2 -> (
                  match Hashtbl.find_opt ra.Trips_compiler.Regalloc.assign v2 with
                  | Some r ->
                    hit := true;
                    Hashtbl.replace ra.Trips_compiler.Regalloc.assign v1 r
                  | None -> ())
                | _ -> ())
            ra.Trips_compiler.Regalloc.live_in;
        Witness.check_regalloc ~fname:w.Driver.w_fn.Cfg.name w.Driver.w_hf ra)
      wits
  in
  if not !hit then Alcotest.fail "no two live values to collide";
  expect_only "colliding register assignment" "regalloc" reports

(* -- dataflow conversion ---------------------------------------------- *)

let bump_imm (i : Isa.inst) =
  match i.Isa.imm with
  | Some n -> { i with Isa.imm = Some (Int64.add n 1L) }
  | None -> i

(* Mutate the EDGE arrays and the pre-schedule snapshots identically, so
   the divergence is attributed to conversion, not scheduling. *)
let test_dataflow_imm () =
  let sym, wits = witnesses Driver.compiled "ct" in
  let w = List.hd wits in
  List.iter
    (fun (b : Block.t) ->
      Array.iteri (fun k i -> b.Block.insts.(k) <- bump_imm i) b.Block.insts;
      let pi, _, _ = List.assoc b.Block.label w.Driver.w_presched in
      Array.iteri (fun k i -> pi.(k) <- bump_imm i) pi)
    w.Driver.w_bf.Block.blocks;
  expect_only "perturbed immediates" "dataflow-convert"
    (Driver.validate_func ~sym w)

let test_dataflow_wreg () =
  let sym, wits = witnesses Driver.compiled "ct" in
  let w = List.hd wits in
  let hit = ref false in
  List.iter
    (fun (b : Block.t) ->
      if (not !hit) && Array.length b.Block.writes > 0 then begin
        hit := true;
        let wr = b.Block.writes.(0) in
        b.Block.writes.(0) <- { Block.wreg = (wr.Block.wreg + 1) mod 128 };
        let _, _, pw = List.assoc b.Block.label w.Driver.w_presched in
        pw.(0) <- b.Block.writes.(0)
      end)
    w.Driver.w_bf.Block.blocks;
  if not !hit then Alcotest.fail "no write slot to retarget";
  expect_only "retargeted write slot" "dataflow-convert"
    (Driver.validate_func ~sym w)

(* -- scheduling -------------------------------------------------------- *)

let test_schedule_mutation () =
  let _, wits = witnesses Driver.compiled "ct" in
  let w = List.hd wits in
  List.iter
    (fun (b : Block.t) ->
      Array.iteri (fun k i -> b.Block.insts.(k) <- bump_imm i) b.Block.insts)
    w.Driver.w_bf.Block.blocks;
  expect_refuted "post-schedule mutation" "schedule"
    (T.check_schedule ~fname:w.Driver.w_fn.Cfg.name w.Driver.w_presched
       w.Driver.w_bf)

(* -- RISC backend ------------------------------------------------------ *)

let risc_reports ~mutate name =
  let b = Registry.find name in
  let prog, wits, layout = Cg.compile_witnessed b.Registry.program in
  let sym = sym_of layout in
  mutate prog;
  List.concat_map
    (fun (fname, (w : Cg.fwitness)) ->
      let rf = List.find (fun (f : Risa.func) -> f.Risa.fname = fname) prog.Risa.funcs in
      let cls v = w.Cg.wf_cls.(v) = Cg.Cf_ in
      let loc v =
        match w.Cg.wf_assign.(v) with
        | Cg.Reg r -> T.Lreg r
        | Cg.Spill s -> T.Lspill s
      in
      T.check_risc_func ~sym ~fname ~cls ~loc ~frame:w.Cg.wf_frame
        ~has_frame:w.Cg.wf_has_frame w.Cg.wf_cfg rf)
    wits

let test_risc_op_flip () =
  let hit = ref false in
  let reports =
    risc_reports "ct" ~mutate:(fun (prog : Risa.program) ->
        List.iter
          (fun (f : Risa.func) ->
            Array.iteri
              (fun k i ->
                if not !hit then
                  match i with
                  | Risa.Op (Ast.Add, d, a, b) ->
                    hit := true;
                    f.Risa.code.(k) <- Risa.Op (Ast.Sub, d, a, b)
                  | Risa.Opi (Ast.Add, d, a, n) ->
                    hit := true;
                    f.Risa.code.(k) <- Risa.Opi (Ast.Sub, d, a, n)
                  | _ -> ())
              f.Risa.code)
          prog.Risa.funcs)
  in
  if not !hit then Alcotest.fail "no add to flip";
  expect_only "flipped RISC opcode" "risc" reports

let test_risc_branch_swap () =
  let hit = ref false in
  let reports =
    risc_reports "ct" ~mutate:(fun (prog : Risa.program) ->
        List.iter
          (fun (f : Risa.func) ->
            Array.iteri
              (fun k i ->
                if not !hit then
                  match i with
                  | Risa.Bc (r, t, fl) when t <> fl ->
                    hit := true;
                    f.Risa.code.(k) <- Risa.Bc (r, fl, t)
                  | _ -> ())
              f.Risa.code)
          prog.Risa.funcs)
  in
  if not !hit then Alcotest.fail "no conditional branch to swap";
  expect_only "swapped RISC branch" "risc" reports

(* -- no false positives ------------------------------------------------ *)

let test_clean_edge () =
  List.iter
    (fun (b : Registry.bench) ->
      let reports, _ = Driver.validate Driver.compiled b.Registry.program in
      let s = T.summarize reports in
      if s.T.n_refuted > 0 then
        Alcotest.failf "%s: %d spurious refutation(s)" b.Registry.name
          s.T.n_refuted)
    Registry.simple_suite

let test_clean_risc () =
  List.iter
    (fun (b : Registry.bench) ->
      let reports = risc_reports b.Registry.name ~mutate:(fun _ -> ()) in
      let s = T.summarize reports in
      if s.T.n_refuted > 0 then
        Alcotest.failf "%s/RISC: %d spurious refutation(s)" b.Registry.name
          s.T.n_refuted)
    Registry.simple_suite

(* -- diagnostics ------------------------------------------------------- *)

let test_diag_dedup () =
  let d ?inst msg = Diag.make ~pass:"transval" ~fname:"f" ~block:"b" ?inst "miscompile" msg in
  let ds = [ d "x"; d "y"; d ~inst:3 "x"; d "x" ] in
  match Diag.dedup ds with
  | [ a; b ] ->
    Alcotest.(check int) "same-location findings collapse" 3 a.Diag.count;
    Alcotest.(check string) "first occurrence wins" "x" a.Diag.msg;
    Alcotest.(check (option int)) "distinct location kept" (Some 3) b.Diag.inst;
    Alcotest.(check int) "singleton" 1 b.Diag.count
  | ds -> Alcotest.failf "expected 2 deduped findings, got %d" (List.length ds)

let () =
  Alcotest.run "transval"
    [
      ( "mutations",
        [
          Alcotest.test_case "opt: constant perturbed" `Quick test_opt_const;
          Alcotest.test_case "opt: branch arms swapped" `Quick test_opt_branch_swap;
          Alcotest.test_case "split: instruction dropped" `Quick test_split_drop;
          Alcotest.test_case "formation: if arms swapped" `Quick test_form_swap_arms;
          Alcotest.test_case "formation: instruction dropped" `Quick test_form_drop_ins;
          Alcotest.test_case "regalloc: write set shrunk" `Quick test_ra_write_set;
          Alcotest.test_case "regalloc: colliding colors" `Quick test_ra_collision;
          Alcotest.test_case "dataflow: immediates perturbed" `Quick test_dataflow_imm;
          Alcotest.test_case "dataflow: write slot retargeted" `Quick test_dataflow_wreg;
          Alcotest.test_case "schedule: arrays mutated" `Quick test_schedule_mutation;
          Alcotest.test_case "risc: opcode flipped" `Quick test_risc_op_flip;
          Alcotest.test_case "risc: branch swapped" `Quick test_risc_branch_swap;
        ] );
      ( "clean",
        [
          Alcotest.test_case "simple suite proves (EDGE)" `Quick test_clean_edge;
          Alcotest.test_case "simple suite proves (RISC)" `Quick test_clean_risc;
        ] );
      ("diag", [ Alcotest.test_case "stable dedup" `Quick test_diag_dedup ]);
    ]
