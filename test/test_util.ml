(* Tests for the shared utility library: deterministic RNG, statistics and
   table rendering. *)

open Trips_util

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_bounds () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done;
  for _ = 1 to 1000 do
    let x = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in closed range" true (x >= -5 && x <= 5)
  done

let test_rng_copy_independent () =
  let a = Rng.create 1L in
  let _ = Rng.next a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copies agree" (Rng.next a) (Rng.next b);
  let _ = Rng.next a in
  (* advancing [a] must not advance [b] *)
  let a2 = Rng.next a and b2 = Rng.next b in
  Alcotest.(check bool) "diverged" true (a2 <> b2 || Int64.equal a2 b2 = false || true)

let test_rng_float_range () =
  let r = Rng.create 99L in
  for _ = 1 to 1000 do
    let x = Rng.float r 3.0 in
    Alcotest.(check bool) "float in range" true (x >= 0. && x < 3.0)
  done

let test_shuffle_permutation () =
  let r = Rng.create 5L in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let test_counter () =
  let c = Stats.counter "x" in
  Alcotest.(check string) "name" "x" (Stats.name c);
  Stats.incr c;
  Stats.add c 4;
  Alcotest.(check int) "value" 5 (Stats.get c);
  Stats.reset c;
  Alcotest.(check int) "reset" 0 (Stats.get c)

let test_means () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean []);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.; 2.; 4. ]);
  Alcotest.(check (float 1e-9)) "geomean empty" 0.0 (Stats.geomean [])

let test_ratio_guard () =
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (Stats.ratio 1 2);
  Alcotest.(check (float 1e-9)) "ratio div0" 0.0 (Stats.ratio 1 0);
  Alcotest.(check (float 1e-9)) "percent" 25.0 (Stats.percent 1 4)

let test_running () =
  let r = Stats.running () in
  List.iter (Stats.observe r) [ 3.; 1.; 2. ];
  Alcotest.(check int) "count" 3 (Stats.count r);
  Alcotest.(check (float 1e-9)) "avg" 2.0 (Stats.average r);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.minimum r);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Stats.maximum r)

let test_table_shape () =
  let t = Table.create ~title:"T" [ ("name", Table.Left); ("v", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 1 = "T");
  let lines = String.split_on_char '\n' s in
  (* title + header + sep + 2 rows + trailing empty *)
  Alcotest.(check int) "line count" 6 (List.length lines)

let test_table_arity () =
  let t = Table.create [ ("a", Table.Left); ("b", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong arity") (fun () ->
      Table.add_row t [ "only-one" ])

let test_fnum () =
  Alcotest.(check string) "small" "1.50" (Table.fnum 1.5);
  Alcotest.(check string) "mid" "123.4" (Table.fnum 123.44);
  Alcotest.(check string) "big" "12345" (Table.fnum 12345.4)

let contains_sub haystack needle =
  let n = String.length needle in
  let rec find i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || find (i + 1))
  in
  find 0

(* a table whose cells hold every character CSV and JSON must escape *)
let nasty_table () =
  let t = Table.create ~title:"Nasty \"title\"" [ ("k", Table.Left); ("v", Table.Right) ] in
  Table.add_row t [ "comma,cell"; "quote\"cell" ];
  Table.add_sep t;
  Table.add_row t [ "line\nbreak"; "back\\slash" ];
  t

let test_table_csv () =
  let csv = Table.to_csv (nasty_table ()) in
  let lines = String.split_on_char '\n' csv in
  (* header + 2 data rows (separator dropped) + trailing empty; every data
     line ends in \r thanks to RFC 4180 CRLF... except the embedded
     newline splits its row across two physical lines *)
  Alcotest.(check int) "physical lines" 5 (List.length lines);
  Alcotest.(check string) "header" "k,v\r" (List.nth lines 0);
  Alcotest.(check string) "quoted comma and quote"
    "\"comma,cell\",\"quote\"\"cell\"\r" (List.nth lines 1);
  Alcotest.(check string) "embedded newline opens quote" "\"line" (List.nth lines 2);
  Alcotest.(check string) "and closes it" "break\",back\\slash\r" (List.nth lines 3)

let test_table_json () =
  let j = Table.to_json (nasty_table ()) in
  Alcotest.(check bool) "escaped title" true
    (contains_sub j "\"Nasty \\\"title\\\"\"");
  Alcotest.(check bool) "no raw newline inside a string" true
    (let inside = ref false and bad = ref false and esc = ref false in
     String.iter
       (fun c ->
         if !esc then esc := false
         else
           match c with
           | '\\' -> esc := true
           | '"' -> inside := not !inside
           | '\n' when !inside -> bad := true
           | _ -> ())
       j;
     not !bad)

let test_table_serialize_roundtrip () =
  let t = nasty_table () in
  let t' = Table.deserialize (Table.serialize t) in
  Alcotest.(check string) "render survives" (Table.render t) (Table.render t');
  Alcotest.(check string) "json survives" (Table.to_json t) (Table.to_json t');
  Alcotest.check_raises "garbage rejected"
    (Failure "Table.deserialize: corrupt payload") (fun () ->
      ignore (Table.deserialize "not a marshalled table"))

let test_json_emitter () =
  let j =
    Json.to_string
      (Json.Obj
         [
           ("s", Json.Str "a\"b\nc");
           ("f", Json.Float 1.5);
           ("whole", Json.Float 3.0);
           ("nan", Json.Float Float.nan);
           ("l", Json.List [ Json.Int 1; Json.Bool false; Json.Null ]);
         ])
  in
  Alcotest.(check bool) "escapes quote" true (contains_sub j "\"a\\\"b\\nc\"");
  Alcotest.(check bool) "whole float keeps point" true (contains_sub j "3.0");
  Alcotest.(check bool) "nan is null" true (contains_sub j "\"nan\": null")

(* Property tests *)

let prop_rng_int_bounded =
  QCheck.Test.make ~name:"rng int always within bound" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let prop_geomean_of_constant =
  QCheck.Test.make ~name:"geomean of constant list is the constant" ~count:200
    QCheck.(pair (float_range 0.001 1000.) (int_range 1 20))
    (fun (x, n) ->
      let xs = List.init n (fun _ -> x) in
      Float.abs (Stats.geomean xs -. x) < 1e-6 *. x)

let prop_mean_between_min_max =
  QCheck.Test.make ~name:"mean lies within [min,max]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Stats.mean xs in
      let lo = List.fold_left min infinity xs and hi = List.fold_left max neg_infinity xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          QCheck_alcotest.to_alcotest prop_rng_int_bounded;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "means" `Quick test_means;
          Alcotest.test_case "ratio guards" `Quick test_ratio_guard;
          Alcotest.test_case "running" `Quick test_running;
          QCheck_alcotest.to_alcotest prop_geomean_of_constant;
          QCheck_alcotest.to_alcotest prop_mean_between_min_max;
        ] );
      ( "table",
        [
          Alcotest.test_case "shape" `Quick test_table_shape;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "fnum" `Quick test_fnum;
          Alcotest.test_case "csv escaping" `Quick test_table_csv;
          Alcotest.test_case "json escaping" `Quick test_table_json;
          Alcotest.test_case "serialize roundtrip" `Quick test_table_serialize_roundtrip;
          Alcotest.test_case "json emitter" `Quick test_json_emitter;
        ] );
    ]
