(* Mutation tests for the EDGE static analyzer: compile realistic programs,
   break them in one specific way, and check the analyzer reports a finding
   of the matching diagnostic class.  Each mutation kind maps to a distinct
   class, and the unmutated programs must lint clean — together these pin
   down both the sensitivity and the false-positive rate of every pass. *)

open Trips_tir
open Trips_edge
open Trips_compiler
open Trips_analysis
open Ast.Infix

(* -- sample programs -------------------------------------------------- *)

(* Nested conditionals in a loop: if-conversion produces predicated
   hyperblocks with merges — material for path and liveness mutations. *)
let prog_classify =
  Ast.program
    [
      Ast.func "main" ~params:[ ("n", Ty.I64) ] ~ret:Ty.I64
        [
          set "small" (i 0);
          set "mid" (i 0);
          set "big" (i 0);
          for_ "k" (i 0) (v "n")
            [
              set "x" ((v "k" *: i 2654435761) &: i 1023);
              if_ (v "x" <: i 100)
                [ set "small" (v "small" +: i 1) ]
                [
                  if_ (v "x" <: i 600)
                    [ set "mid" (v "mid" +: v "x") ]
                    [ set "big" (v "big" +: i 2) ];
                ];
            ];
          ret ((v "small" <<: i 40) ^: (v "mid" <<: i 10) ^: v "big");
        ];
    ]

(* Dense memory traffic: blocks with several loads and stores — material
   for the LSID mutations. *)
let prog_mem =
  Ast.program
    ~globals:[ Ast.global "buf" 256 ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          for_ "k" (i 0) (i 32)
            [
              st8 (g "buf" +: (v "k" <<: i 3)) (v "k" *: i 3);
            ];
          set "acc" (i 0);
          for_ "k" (i 0) (i 31)
            [
              set "a" (ld8 (g "buf" +: (v "k" <<: i 3)));
              set "b" (ld8 (g "buf" +: ((v "k" +: i 1) <<: i 3)));
              st8 (g "buf" +: (v "k" <<: i 3)) (v "a" +: v "b");
              set "acc" (v "acc" +: v "a");
            ];
          ret (v "acc");
        ];
    ]

let compiled_classify = lazy (Driver.compile Driver.compiled prog_classify)
let compiled_mem = lazy (Driver.compile Driver.compiled prog_mem)

(* -- mutation machinery ----------------------------------------------- *)

(* Apply [f] to the first block that admits it, rebuilding the program
   around the mutated copy.  [f] must copy any array it edits: untouched
   blocks are shared with the original program. *)
let mutate (p : Block.program) (f : Block.t -> Block.t option) : Block.program =
  let applied = ref false in
  let funcs =
    List.map
      (fun (fn : Block.func) ->
        {
          fn with
          Block.blocks =
            List.map
              (fun b ->
                if !applied then b
                else
                  match f b with
                  | Some b' ->
                    applied := true;
                    b'
                  | None -> b)
              fn.Block.blocks;
        })
      p.Block.funcs
  in
  if not !applied then Alcotest.fail "no block admits this mutation";
  { p with Block.funcs }

let with_insts (b : Block.t) edit =
  let insts = Array.copy b.Block.insts in
  match edit insts with true -> Some { b with Block.insts = insts } | false -> None

let expect_class prog cls =
  let ds = Analyzer.analyze_program prog in
  if not (Analyzer.has_class cls ds) then
    Alcotest.failf "expected a %s finding, got: %s%s" cls (Analyzer.summary ds)
      (String.concat "" (List.map (fun d -> "\n  " ^ Diag.to_line d) ds))

(* -- clean baselines --------------------------------------------------- *)

let test_clean () =
  List.iter
    (fun p ->
      let ds = Analyzer.analyze_program (Lazy.force p) in
      Alcotest.(check bool)
        "no errors or warnings on compiled output" false
        (Diag.failed ~strict:true ds))
    [ compiled_classify; compiled_mem ]

let test_driver_verify () =
  (* ~verify:true must accept its own output under every preset *)
  List.iter
    (fun preset ->
      ignore (Driver.compile ~verify:true preset prog_classify);
      ignore (Driver.compile ~verify:true preset prog_mem))
    [ Driver.o0; Driver.compiled; Driver.hand; Driver.basic_blocks ]

(* -- per-block structural mutations ------------------------------------ *)

(* 1. exit-path: strip the predicate from a predicated branch, so two
   branches fire on the paths where it was squashed before. *)
let test_exit_path () =
  let p =
    mutate (Lazy.force compiled_classify) (fun b ->
        with_insts b (fun insts ->
            let found = ref false in
            Array.iteri
              (fun idx (ins : Isa.inst) ->
                if not !found then
                  match (ins.Isa.op, ins.Isa.pred) with
                  | Isa.Branch _, (Isa.On_true _ | Isa.On_false _) ->
                    insts.(idx) <- { ins with Isa.pred = Isa.Unpred };
                    found := true
                  | _ -> ())
              insts;
            !found))
  in
  expect_class p "exit-path"

(* 2. lsid-dup: give two memory operations of one block the same LSID. *)
let relabel_lsid lsid (op : Isa.opcode) =
  match op with
  | Isa.Load (ty, w, _) -> Isa.Load (ty, w, lsid)
  | Isa.Store (w, _) -> Isa.Store (w, lsid)
  | op -> op

let test_lsid_dup () =
  let p =
    mutate (Lazy.force compiled_mem) (fun b ->
        with_insts b (fun insts ->
            let mems = ref [] in
            Array.iteri
              (fun idx (ins : Isa.inst) ->
                match ins.Isa.op with
                | Isa.Load (_, _, l) | Isa.Store (_, l) -> mems := (idx, l) :: !mems
                | _ -> ())
              insts;
            match List.rev !mems with
            | (_, l0) :: (j, _) :: _ ->
              insts.(j) <- { insts.(j) with Isa.op = relabel_lsid l0 insts.(j).Isa.op };
              true
            | _ -> false))
  in
  expect_class p "lsid-dup"

(* 3. lsid-range: an LSID past the 32-entry load/store queue. *)
let test_lsid_range () =
  let p =
    mutate (Lazy.force compiled_mem) (fun b ->
        with_insts b (fun insts ->
            let found = ref false in
            Array.iteri
              (fun idx (ins : Isa.inst) ->
                if not !found then
                  match ins.Isa.op with
                  | Isa.Load _ | Isa.Store _ ->
                    insts.(idx) <-
                      { ins with Isa.op = relabel_lsid Isa.max_lsids ins.Isa.op };
                    found := true
                  | _ -> ())
              insts;
            !found))
  in
  expect_class p "lsid-range"

(* 4. arity: reroute an operand onto the predicate port of an unpredicated
   consumer (and leave op0 starved). *)
let test_arity () =
  let p =
    mutate (Lazy.force compiled_classify) (fun b ->
        with_insts b (fun insts ->
            let found = ref false in
            Array.iteri
              (fun idx (ins : Isa.inst) ->
                if not !found then
                  let retarget = function
                    | Isa.To_inst (j, Isa.Op0)
                      when (not !found)
                           && insts.(j).Isa.pred = Isa.Unpred
                           && Isa.operand_arity insts.(j) >= 1 ->
                      found := true;
                      Isa.To_inst (j, Isa.OpPred)
                    | t -> t
                  in
                  insts.(idx) <- { ins with Isa.targets = List.map retarget ins.Isa.targets })
              insts;
            !found))
  in
  expect_class p "arity"

(* 5. port-conflict: a read slot delivering twice to the same port. *)
let test_port_conflict () =
  let p =
    mutate (Lazy.force compiled_classify) (fun b ->
        let reads = Array.copy b.Block.reads in
        let found = ref false in
        Array.iteri
          (fun ri (r : Block.read) ->
            if not !found then
              match r.Block.rtargets with
              | [ t ] ->
                reads.(ri) <- { r with Block.rtargets = [ t; t ] };
                found := true
              | _ -> ())
          reads;
        if !found then Some { b with Block.reads } else None)
  in
  expect_class p "port-conflict"

(* 6. write-producer: disconnect the sole producer of a write slot. *)
let test_write_producer () =
  let p =
    mutate (Lazy.force compiled_classify) (fun b ->
        (* producer tally per write slot *)
        let nw = Array.length b.Block.writes in
        if nw = 0 then None
        else begin
          let tally = Array.make nw 0 in
          let count = function
            | Isa.To_write w when w >= 0 && w < nw -> tally.(w) <- tally.(w) + 1
            | _ -> ()
          in
          Array.iter (fun (ins : Isa.inst) -> List.iter count ins.Isa.targets) b.Block.insts;
          Array.iter (fun (r : Block.read) -> List.iter count r.Block.rtargets) b.Block.reads;
          with_insts b (fun insts ->
              let found = ref false in
              Array.iteri
                (fun idx (ins : Isa.inst) ->
                  if not !found then
                    let keep = function
                      | Isa.To_write w when (not !found) && w >= 0 && w < nw && tally.(w) = 1 ->
                        found := true;
                        false
                      | _ -> true
                    in
                    insts.(idx) <- { ins with Isa.targets = List.filter keep ins.Isa.targets })
                insts;
              !found)
        end)
  in
  expect_class p "write-producer"

(* 7. fanout: three targets on one instruction. *)
let test_fanout () =
  let p =
    mutate (Lazy.force compiled_classify) (fun b ->
        with_insts b (fun insts ->
            let found = ref false in
            Array.iteri
              (fun idx (ins : Isa.inst) ->
                if not !found then
                  match ins.Isa.targets with
                  | [ t ] ->
                    insts.(idx) <- { ins with Isa.targets = [ t; t; t ] };
                    found := true
                  | _ -> ())
              insts;
            !found))
  in
  expect_class p "fanout"

(* 8. dead-code: an appended constant generator that feeds nothing. *)
let test_dead_code () =
  let p =
    mutate (Lazy.force compiled_classify) (fun b ->
        if Array.length b.Block.insts >= Isa.max_insts then None
        else begin
          let orphan =
            { Isa.op = Isa.Geni 42L; pred = Isa.Unpred; imm = None; targets = [] }
          in
          let b' =
            {
              b with
              Block.insts = Array.append b.Block.insts [| orphan |];
              placement = [||];
            }
          in
          Block.default_placement b';
          Some b'
        end)
  in
  expect_class p "dead-code"

(* 9. placement: a tile outside the 4x4 grid. *)
let test_placement () =
  let p =
    mutate (Lazy.force compiled_classify) (fun b ->
        if Array.length b.Block.placement = 0 then None
        else begin
          let placement = Array.copy b.Block.placement in
          placement.(0) <- Isa.num_ets + 3;
          Some { b with Block.placement }
        end)
  in
  expect_class p "placement"

(* -- dataflow deadlock -------------------------------------------------- *)

(* 10. deadlock: hand-build a block whose adder needs op0 from the true arm
   and op1 from the false arm of the same predicate — each path starves one
   port, so the adder can fire on no path. *)
let test_deadlock () =
  let ins op ?(pred = Isa.Unpred) targets =
    { Isa.op; pred; imm = None; targets }
  in
  let b =
    {
      Block.label = "dl.entry";
      reads = [||];
      writes = [| { Block.wreg = 1 } |];
      insts =
        [|
          ins (Isa.Geni 1L) [ Isa.To_inst (1, Isa.OpPred); Isa.To_inst (2, Isa.OpPred) ];
          ins (Isa.Geni 7L) ~pred:(Isa.On_true 0) [ Isa.To_inst (3, Isa.Op0) ];
          ins (Isa.Geni 9L) ~pred:(Isa.On_false 0) [ Isa.To_inst (3, Isa.Op1) ];
          ins (Isa.Bin Ast.Add) [ Isa.To_write 0 ];
          ins (Isa.Branch Isa.Xret) [];
        |];
      placement = [||];
    }
  in
  Block.default_placement b;
  let f = { Block.fname = "dl"; entry = "dl.entry"; blocks = [ b ] } in
  let ds = Analyzer.analyze_func f in
  if not (Analyzer.has_class "deadlock" ds) then
    Alcotest.failf "expected a deadlock finding, got: %s" (Analyzer.summary ds)

(* -- cross-block liveness mutations ------------------------------------- *)

let func_regs get (fn : Block.func) =
  List.fold_left
    (fun acc (b : Block.t) -> List.rev_append (get b) acc)
    [] fn.Block.blocks

let defs_of (b : Block.t) =
  Array.to_list (Array.map (fun (w : Block.write) -> w.Block.wreg) b.Block.writes)

let uses_of (b : Block.t) =
  Array.to_list (Array.map (fun (r : Block.read) -> r.Block.rreg) b.Block.reads)

(* a non-ABI register the function neither reads nor writes *)
let fresh_reg (fn : Block.func) =
  let taken = func_regs defs_of fn @ func_regs uses_of fn in
  let rec pick r =
    if r >= Isa.num_regs then Alcotest.fail "no fresh register"
    else if List.mem r taken then pick (r + 1)
    else r
  in
  pick 10

(* 11. use-before-def: a read of a register nothing ever writes. *)
let test_use_before_def () =
  let prog = Lazy.force compiled_classify in
  let fn = List.hd prog.Block.funcs in
  let r = fresh_reg fn in
  let p =
    mutate prog (fun b ->
        if Array.length b.Block.reads = 0 then None
        else begin
          let reads = Array.copy b.Block.reads in
          reads.(0) <- { reads.(0) with Block.rreg = r };
          Some { b with Block.reads }
        end)
  in
  expect_class p "use-before-def"

(* 12. dead-write: a write of a register nothing ever reads. *)
let test_dead_write () =
  let prog = Lazy.force compiled_classify in
  let fn = List.hd prog.Block.funcs in
  let r = fresh_reg fn in
  let p =
    mutate prog (fun b ->
        if Array.length b.Block.writes = 0 then None
        else begin
          let writes = Array.copy b.Block.writes in
          writes.(0) <- { Block.wreg = r };
          Some { b with Block.writes }
        end)
  in
  expect_class p "dead-write"

(* 13. branch-target: a jump to a label no function defines. *)
let test_branch_target () =
  let p =
    mutate (Lazy.force compiled_classify) (fun b ->
        with_insts b (fun insts ->
            let found = ref false in
            Array.iteri
              (fun idx (ins : Isa.inst) ->
                if not !found then
                  match ins.Isa.op with
                  | Isa.Branch (Isa.Xjump _) ->
                    insts.(idx) <-
                      { ins with Isa.op = Isa.Branch (Isa.Xjump "nowhere.block") };
                    found := true
                  | _ -> ())
              insts;
            !found))
  in
  expect_class p "branch-target"

(* -- reporting ---------------------------------------------------------- *)

let test_distinct_classes () =
  (* every mutation kind above is caught by its own diagnostic class *)
  let classes =
    [
      "exit-path"; "lsid-dup"; "lsid-range"; "arity"; "port-conflict";
      "write-producer"; "fanout"; "dead-code"; "placement"; "deadlock";
      "use-before-def"; "dead-write"; "branch-target";
    ]
  in
  Alcotest.(check int)
    "13 distinct classes" 13
    (List.length (List.sort_uniq compare classes))

let test_renderers () =
  let ds =
    [
      Diag.make ~fname:"f" ~block:"f.b" ~inst:3 ~fix:"do less" "exit-path" "two branches fire";
      Diag.make ~sev:Diag.Warning ~fname:"f" "dead-write" "r17 unused";
      Diag.make ~sev:Diag.Info "dead-code" "orphan";
    ]
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let txt = Diag.render_text ds in
  Alcotest.(check bool) "text mentions class" true (contains txt "exit-path");
  let json = Trips_util.Json.to_string (Diag.list_to_json ds) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json mentions " ^ needle) true (contains json needle))
    [ "exit-path"; "dead-write"; "dead-code"; "error"; "warning"; "info" ]

let () =
  Alcotest.run "analysis"
    [
      ( "baseline",
        [
          Alcotest.test_case "compiled programs lint clean" `Quick test_clean;
          Alcotest.test_case "driver verify accepts own output" `Slow test_driver_verify;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "exit-path" `Quick test_exit_path;
          Alcotest.test_case "lsid-dup" `Quick test_lsid_dup;
          Alcotest.test_case "lsid-range" `Quick test_lsid_range;
          Alcotest.test_case "arity" `Quick test_arity;
          Alcotest.test_case "port-conflict" `Quick test_port_conflict;
          Alcotest.test_case "write-producer" `Quick test_write_producer;
          Alcotest.test_case "fanout" `Quick test_fanout;
          Alcotest.test_case "dead-code" `Quick test_dead_code;
          Alcotest.test_case "placement" `Quick test_placement;
          Alcotest.test_case "deadlock" `Quick test_deadlock;
          Alcotest.test_case "use-before-def" `Quick test_use_before_def;
          Alcotest.test_case "dead-write" `Quick test_dead_write;
          Alcotest.test_case "branch-target" `Quick test_branch_target;
          Alcotest.test_case "distinct classes" `Quick test_distinct_classes;
          Alcotest.test_case "renderers" `Quick test_renderers;
        ] );
    ]
