(* Determinism of the experiment battery: repeated runs and parallel
   engine runs must render byte-identical tables, so the engine can never
   silently reorder or perturb results.

   The full battery costs ~17 minutes of simulation on one core, so the
   default tier-1 run covers the experiments whose simulations finish in
   seconds; set TRIPS_DETERMINISM_FULL=1 to sweep all of
   [Experiments.all]. *)

open Trips_harness
module Table = Trips_util.Table
module Engine = Trips_engine.Engine

(* Chosen by measurement: these four finish in ~35 s cold on one core
   while still covering a config table, a cycle-level kernel run, the
   five-platform speedup comparison (90 warm sub-jobs) and the FLOPS
   table.  The remaining experiments cost minutes each. *)
let fast_subset = [ "table1"; "fig8"; "fig11"; "flops" ]

let ids () =
  match Sys.getenv_opt "TRIPS_DETERMINISM_FULL" with
  | Some ("1" | "true" | "yes") ->
    List.map (fun (e : Experiments.experiment) -> e.Experiments.id) Experiments.all
  | _ -> fast_subset

let experiments () = List.map Experiments.find (ids ())

(* Sequential renders, computed once and shared by both tests; the second
   sequential pass exercises the memo-table path. *)
let reference = lazy (
  List.map
    (fun (e : Experiments.experiment) ->
      (e.Experiments.id, Table.render (e.Experiments.run ())))
    (experiments ()))

let test_sequential_repeatable () =
  List.iter2
    (fun (id, first) (e : Experiments.experiment) ->
      let again = Table.render (e.Experiments.run ()) in
      Alcotest.(check string) (id ^ " repeats byte-identically") first again)
    (Lazy.force reference) (experiments ())

let test_parallel_identical () =
  let reference = Lazy.force reference in
  (* cold memo tables: the engine must recompute everything concurrently *)
  Platforms.clear_caches ();
  let report =
    Engine.run ~workers:4 (List.map Experiments.to_job (experiments ()))
  in
  List.iter2
    (fun (id, expected) (r : Engine.job_report) ->
      match r.Engine.outcome with
      | Engine.Finished table ->
        Alcotest.(check string)
          (id ^ " identical under --jobs 4") expected (Table.render table)
      | Engine.Failed { error; _ } -> Alcotest.fail (id ^ " failed: " ^ error))
    reference report.Engine.job_reports

let () =
  Alcotest.run "determinism"
    [
      ( "experiments",
        [
          Alcotest.test_case "sequential reruns identical" `Quick
            test_sequential_repeatable;
          Alcotest.test_case "parallel engine identical" `Quick
            test_parallel_identical;
        ] );
    ]
