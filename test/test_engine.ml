(* Tests for the parallel experiment engine: the bounded work queue, job
   scheduling and crash isolation, and the on-disk result cache. *)

module Table = Trips_util.Table
module Engine = Trips_engine.Engine
module Workq = Trips_engine.Workq
module Result_cache = Trips_engine.Result_cache

let mk_table tag =
  let t = Table.create ~title:("t-" ^ tag) [ ("k", Table.Left); ("v", Table.Right) ] in
  Table.add_row t [ tag; "1" ];
  t

let trivial_job ?cache_key ?warm ?timeout_s ?retries id =
  Engine.job ?cache_key ?warm ?timeout_s ?retries ~id (fun () -> mk_table id)

let render_of = function
  | Engine.Finished t -> Table.render t
  | Engine.Failed { error; _ } -> "FAILED: " ^ error

(* -- Workq ----------------------------------------------------------- *)

let test_workq_fifo () =
  let q = Workq.create ~capacity:4 in
  List.iter (fun i -> Workq.push q i) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Workq.length q);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Workq.pop q);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Workq.pop q);
  Workq.close q;
  Alcotest.(check (option int)) "drain before closed-empty" (Some 3) (Workq.pop q);
  Alcotest.(check (option int)) "closed and drained" None (Workq.pop q);
  Alcotest.check_raises "push after close" Workq.Closed (fun () -> Workq.push q 9)

let test_workq_bound_blocks () =
  (* a producer pushing past the bound blocks until a consumer pops *)
  let q = Workq.create ~capacity:2 in
  Workq.push q 1;
  Workq.push q 2;
  let third_pushed = Atomic.make false in
  let producer =
    Domain.spawn (fun () ->
        Workq.push q 3;
        Atomic.set third_pushed true)
  in
  Unix.sleepf 0.05;
  Alcotest.(check bool) "still blocked at capacity" false (Atomic.get third_pushed);
  Alcotest.(check (option int)) "pop frees a slot" (Some 1) (Workq.pop q);
  Domain.join producer;
  Alcotest.(check bool) "unblocked after pop" true (Atomic.get third_pushed);
  Alcotest.(check int) "both remain" 2 (Workq.length q)

(* -- Engine scheduling ------------------------------------------------ *)

let test_engine_more_jobs_than_workers () =
  let n = 32 in
  let jobs = List.init n (fun i -> trivial_job (Printf.sprintf "job%02d" i)) in
  let report = Engine.run ~workers:3 ~queue_capacity:4 jobs in
  Alcotest.(check int) "all jobs reported" n (List.length report.Engine.job_reports);
  List.iteri
    (fun i (r : Engine.job_report) ->
      Alcotest.(check string)
        "submission order preserved"
        (Printf.sprintf "job%02d" i)
        r.Engine.job_id;
      Alcotest.(check string)
        "result is the job's own table"
        (Table.render (mk_table r.Engine.job_id))
        (render_of r.Engine.outcome))
    report.Engine.job_reports

let test_engine_warm_subjobs_run_before_finalize () =
  let warmed = Atomic.make 0 in
  let job =
    Engine.job ~id:"warmy"
      ~warm:(List.init 8 (fun _ () -> Atomic.incr warmed))
      (fun () ->
        (* every warm sub-job has completed by the time run executes *)
        mk_table (string_of_int (Atomic.get warmed)))
  in
  let report = Engine.run ~workers:4 [ job ] in
  match (List.hd report.Engine.job_reports).Engine.outcome with
  | Engine.Finished t ->
    Alcotest.(check string) "run saw all warms" (Table.render (mk_table "8"))
      (Table.render t)
  | Engine.Failed { error; _ } -> Alcotest.fail error

let test_engine_failure_isolated () =
  let jobs =
    [
      trivial_job "ok-before";
      Engine.job ~id:"boom" ~retries:2 (fun () -> failwith "deliberate failure");
      trivial_job "ok-after";
    ]
  in
  let report = Engine.run ~workers:2 jobs in
  (match report.Engine.job_reports with
  | [ a; b; c ] ->
    Alcotest.(check string) "sibling before" (Table.render (mk_table "ok-before"))
      (render_of a.Engine.outcome);
    (match b.Engine.outcome with
    | Engine.Failed { attempts; error } ->
      Alcotest.(check int) "initial try + 2 retries" 3 attempts;
      Alcotest.(check string) "structured reason" "deliberate failure" error
    | Engine.Finished _ -> Alcotest.fail "raising job must fail");
    Alcotest.(check string) "sibling after" (Table.render (mk_table "ok-after"))
      (render_of c.Engine.outcome)
  | _ -> Alcotest.fail "three reports expected");
  Alcotest.(check int) "failed job counts its attempts" 3
    (List.nth report.Engine.job_reports 1).Engine.attempts

let test_engine_warm_failure_surfaces_in_run () =
  (* a crashing warm sub-job must not kill the pool; the job's own run
     decides its fate *)
  let job =
    Engine.job ~id:"warm-crash"
      ~warm:[ (fun () -> failwith "warm crash") ]
      (fun () -> mk_table "survived")
  in
  let report = Engine.run ~workers:2 [ job ] in
  Alcotest.(check string) "job still finishes" (Table.render (mk_table "survived"))
    (render_of (List.hd report.Engine.job_reports).Engine.outcome)

let test_engine_soft_timeout () =
  let job =
    Engine.job ~id:"slow" ~timeout_s:0.01 ~retries:3 (fun () ->
        Unix.sleepf 0.05;
        mk_table "slow")
  in
  let report = Engine.run ~workers:1 [ job ] in
  match (List.hd report.Engine.job_reports).Engine.outcome with
  | Engine.Failed { attempts; error } ->
    Alcotest.(check int) "no retry on timeout" 1 attempts;
    Alcotest.(check bool) "reason names the budget" true
      (String.length error >= 7 && String.sub error 0 7 = "timeout")
  | Engine.Finished _ -> Alcotest.fail "deadline blown, job must fail"

(* -- Result cache ----------------------------------------------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "trips-cache-test-%d-%.0f" (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let test_cache_roundtrip () =
  with_temp_dir @@ fun dir ->
  let c = Result_cache.open_ dir in
  Alcotest.(check bool) "miss on empty" true
    (Result_cache.find c ~key:"k1" = None);
  let t = mk_table "cached" in
  Result_cache.store c ~key:"k1" t;
  (match Result_cache.find c ~key:"k1" with
  | Some t' -> Alcotest.(check string) "hit round-trips" (Table.render t) (Table.render t')
  | None -> Alcotest.fail "stored entry must hit");
  (* same digest file, different key inside → miss, not a wrong table *)
  Alcotest.(check bool) "other key misses" true
    (Result_cache.find c ~key:"k2" = None)

let test_cache_corrupt_entry_is_miss () =
  with_temp_dir @@ fun dir ->
  let c = Result_cache.open_ dir in
  let oc = open_out_bin (Result_cache.path c ~key:"evil") in
  output_string oc "garbage bytes";
  close_out oc;
  Alcotest.(check bool) "corrupt file reads as miss" true
    (Result_cache.find c ~key:"evil" = None)

let test_engine_cache_hit_skips_run () =
  with_temp_dir @@ fun dir ->
  let cache = Result_cache.open_ dir in
  let runs = Atomic.make 0 in
  let mk () =
    Engine.job ~id:"exp" ~cache_key:"exp/v1" (fun () ->
        Atomic.incr runs;
        mk_table "expensive")
  in
  let first = Engine.run ~workers:2 ~cache [ mk () ] in
  Alcotest.(check int) "first run computes" 1 (Atomic.get runs);
  Alcotest.(check int) "first run misses" 1 first.Engine.cache_misses;
  Alcotest.(check int) "first run has no hits" 0 first.Engine.cache_hits;
  let second = Engine.run ~workers:2 ~cache [ mk () ] in
  Alcotest.(check int) "cache hit skips run" 1 (Atomic.get runs);
  Alcotest.(check int) "second run hits" 1 second.Engine.cache_hits;
  let r = List.hd second.Engine.job_reports in
  Alcotest.(check bool) "report marks the hit" true r.Engine.cache_hit;
  Alcotest.(check int) "no attempts on a hit" 0 r.Engine.attempts;
  Alcotest.(check string) "stored table returned"
    (Table.render (mk_table "expensive"))
    (render_of r.Engine.outcome)

let () =
  Alcotest.run "engine"
    [
      ( "workq",
        [
          Alcotest.test_case "fifo and close" `Quick test_workq_fifo;
          Alcotest.test_case "bound blocks producers" `Quick test_workq_bound_blocks;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "queue drains under more jobs than workers" `Quick
            test_engine_more_jobs_than_workers;
          Alcotest.test_case "warm sub-jobs precede finalize" `Quick
            test_engine_warm_subjobs_run_before_finalize;
          Alcotest.test_case "raising job fails, siblings complete" `Quick
            test_engine_failure_isolated;
          Alcotest.test_case "warm crash is not fatal" `Quick
            test_engine_warm_failure_surfaces_in_run;
          Alcotest.test_case "soft timeout" `Quick test_engine_soft_timeout;
        ] );
      ( "cache",
        [
          Alcotest.test_case "store/find roundtrip" `Quick test_cache_roundtrip;
          Alcotest.test_case "corrupt entry is a miss" `Quick
            test_cache_corrupt_entry_is_miss;
          Alcotest.test_case "hit returns stored table without run" `Quick
            test_engine_cache_hit_skips_run;
        ] );
    ]
