(* Tests for the parallel experiment engine: the bounded work queue, job
   scheduling and crash isolation, and the on-disk result cache. *)

module Table = Trips_util.Table
module Engine = Trips_engine.Engine
module Workq = Trips_engine.Workq
module Result_cache = Trips_engine.Result_cache

let mk_table tag =
  let t = Table.create ~title:("t-" ^ tag) [ ("k", Table.Left); ("v", Table.Right) ] in
  Table.add_row t [ tag; "1" ];
  t

let trivial_job ?cache_key ?warm ?timeout_s ?retries id =
  Engine.job ?cache_key ?warm ?timeout_s ?retries ~id (fun () -> mk_table id)

let render_of = function
  | Engine.Finished t -> Table.render t
  | Engine.Failed { error; _ } -> "FAILED: " ^ error

(* -- Workq ----------------------------------------------------------- *)

let test_workq_fifo () =
  let q = Workq.create ~capacity:4 in
  List.iter (fun i -> Workq.push q i) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Workq.length q);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Workq.pop q);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Workq.pop q);
  Workq.close q;
  Alcotest.(check (option int)) "drain before closed-empty" (Some 3) (Workq.pop q);
  Alcotest.(check (option int)) "closed and drained" None (Workq.pop q);
  Alcotest.check_raises "push after close" Workq.Closed (fun () -> Workq.push q 9)

let test_workq_bound_blocks () =
  (* a producer pushing past the bound blocks until a consumer pops *)
  let q = Workq.create ~capacity:2 in
  Workq.push q 1;
  Workq.push q 2;
  let third_pushed = Atomic.make false in
  let producer =
    Domain.spawn (fun () ->
        Workq.push q 3;
        Atomic.set third_pushed true)
  in
  Unix.sleepf 0.05;
  Alcotest.(check bool) "still blocked at capacity" false (Atomic.get third_pushed);
  Alcotest.(check (option int)) "pop frees a slot" (Some 1) (Workq.pop q);
  Domain.join producer;
  Alcotest.(check bool) "unblocked after pop" true (Atomic.get third_pushed);
  Alcotest.(check int) "both remain" 2 (Workq.length q)

(* -- Engine scheduling ------------------------------------------------ *)

let test_engine_more_jobs_than_workers () =
  let n = 32 in
  let jobs = List.init n (fun i -> trivial_job (Printf.sprintf "job%02d" i)) in
  let report = Engine.run ~workers:3 ~queue_capacity:4 jobs in
  Alcotest.(check int) "all jobs reported" n (List.length report.Engine.job_reports);
  List.iteri
    (fun i (r : Engine.job_report) ->
      Alcotest.(check string)
        "submission order preserved"
        (Printf.sprintf "job%02d" i)
        r.Engine.job_id;
      Alcotest.(check string)
        "result is the job's own table"
        (Table.render (mk_table r.Engine.job_id))
        (render_of r.Engine.outcome))
    report.Engine.job_reports

let test_engine_warm_subjobs_run_before_finalize () =
  let warmed = Atomic.make 0 in
  let job =
    Engine.job ~id:"warmy"
      ~warm:(List.init 8 (fun _ () -> Atomic.incr warmed))
      (fun () ->
        (* every warm sub-job has completed by the time run executes *)
        mk_table (string_of_int (Atomic.get warmed)))
  in
  let report = Engine.run ~workers:4 [ job ] in
  match (List.hd report.Engine.job_reports).Engine.outcome with
  | Engine.Finished t ->
    Alcotest.(check string) "run saw all warms" (Table.render (mk_table "8"))
      (Table.render t)
  | Engine.Failed { error; _ } -> Alcotest.fail error

let test_engine_failure_isolated () =
  let jobs =
    [
      trivial_job "ok-before";
      Engine.job ~id:"boom" ~retries:2 (fun () -> failwith "deliberate failure");
      trivial_job "ok-after";
    ]
  in
  let report = Engine.run ~workers:2 jobs in
  (match report.Engine.job_reports with
  | [ a; b; c ] ->
    Alcotest.(check string) "sibling before" (Table.render (mk_table "ok-before"))
      (render_of a.Engine.outcome);
    (match b.Engine.outcome with
    | Engine.Failed { attempts; error } ->
      Alcotest.(check int) "initial try + 2 retries" 3 attempts;
      Alcotest.(check string) "structured reason" "deliberate failure" error
    | Engine.Finished _ -> Alcotest.fail "raising job must fail");
    Alcotest.(check string) "sibling after" (Table.render (mk_table "ok-after"))
      (render_of c.Engine.outcome)
  | _ -> Alcotest.fail "three reports expected");
  Alcotest.(check int) "failed job counts its attempts" 3
    (List.nth report.Engine.job_reports 1).Engine.attempts

let test_engine_warm_failure_surfaces_in_run () =
  (* a crashing warm sub-job must not kill the pool; the job's own run
     decides its fate *)
  let job =
    Engine.job ~id:"warm-crash"
      ~warm:[ (fun () -> failwith "warm crash") ]
      (fun () -> mk_table "survived")
  in
  let report = Engine.run ~workers:2 [ job ] in
  Alcotest.(check string) "job still finishes" (Table.render (mk_table "survived"))
    (render_of (List.hd report.Engine.job_reports).Engine.outcome)

let test_engine_soft_timeout () =
  let job =
    Engine.job ~id:"slow" ~timeout_s:0.01 ~retries:3 (fun () ->
        Unix.sleepf 0.05;
        mk_table "slow")
  in
  let report = Engine.run ~workers:1 [ job ] in
  match (List.hd report.Engine.job_reports).Engine.outcome with
  | Engine.Failed { attempts; error } ->
    Alcotest.(check int) "no retry on timeout" 1 attempts;
    Alcotest.(check bool) "reason names the budget" true
      (String.length error >= 7 && String.sub error 0 7 = "timeout")
  | Engine.Finished _ -> Alcotest.fail "deadline blown, job must fail"

(* -- Result cache ----------------------------------------------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "trips-cache-test-%d-%.0f" (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let test_cache_roundtrip () =
  with_temp_dir @@ fun dir ->
  let c = Result_cache.open_ dir in
  Alcotest.(check bool) "miss on empty" true
    (Result_cache.find c ~key:"k1" = None);
  let t = mk_table "cached" in
  Result_cache.store c ~key:"k1" t;
  (match Result_cache.find c ~key:"k1" with
  | Some t' -> Alcotest.(check string) "hit round-trips" (Table.render t) (Table.render t')
  | None -> Alcotest.fail "stored entry must hit");
  (* same digest file, different key inside → miss, not a wrong table *)
  Alcotest.(check bool) "other key misses" true
    (Result_cache.find c ~key:"k2" = None)

let test_cache_corrupt_entry_is_miss () =
  with_temp_dir @@ fun dir ->
  let c = Result_cache.open_ dir in
  let oc = open_out_bin (Result_cache.path c ~key:"evil") in
  output_string oc "garbage bytes";
  close_out oc;
  Alcotest.(check bool) "corrupt file reads as miss" true
    (Result_cache.find c ~key:"evil" = None)

let test_engine_cache_hit_skips_run () =
  with_temp_dir @@ fun dir ->
  let cache = Result_cache.open_ dir in
  let runs = Atomic.make 0 in
  let mk () =
    Engine.job ~id:"exp" ~cache_key:"exp/v1" (fun () ->
        Atomic.incr runs;
        mk_table "expensive")
  in
  let first = Engine.run ~workers:2 ~cache [ mk () ] in
  Alcotest.(check int) "first run computes" 1 (Atomic.get runs);
  Alcotest.(check int) "first run misses" 1 first.Engine.cache_misses;
  Alcotest.(check int) "first run has no hits" 0 first.Engine.cache_hits;
  let second = Engine.run ~workers:2 ~cache [ mk () ] in
  Alcotest.(check int) "cache hit skips run" 1 (Atomic.get runs);
  Alcotest.(check int) "second run hits" 1 second.Engine.cache_hits;
  let r = List.hd second.Engine.job_reports in
  Alcotest.(check bool) "report marks the hit" true r.Engine.cache_hit;
  Alcotest.(check int) "no attempts on a hit" 0 r.Engine.attempts;
  Alcotest.(check string) "stored table returned"
    (Table.render (mk_table "expensive"))
    (render_of r.Engine.outcome)

(* -- Workq admission / drain ------------------------------------------ *)

let test_workq_try_push () =
  let q = Workq.create ~capacity:2 in
  Alcotest.(check bool) "admitted 1" true (Workq.try_push q 1);
  Alcotest.(check bool) "admitted 2" true (Workq.try_push q 2);
  Alcotest.(check bool) "full sheds" false (Workq.try_push q 3);
  Alcotest.(check int) "shed item not enqueued" 2 (Workq.length q);
  ignore (Workq.pop q);
  Alcotest.(check bool) "slot freed" true (Workq.try_push q 3);
  Workq.close q;
  Alcotest.check_raises "try_push after close" Workq.Closed (fun () ->
      ignore (Workq.try_push q 4))

let test_workq_wait_drained () =
  let q = Workq.create ~capacity:8 in
  List.iter (Workq.push q) [ 1; 2; 3 ];
  Alcotest.(check bool) "not closed yet" false (Workq.is_closed q);
  let drained = Atomic.make false in
  let waiter =
    Domain.spawn (fun () ->
        Workq.wait_drained q;
        Atomic.set drained true)
  in
  let consumer =
    Domain.spawn (fun () ->
        let rec go n = match Workq.pop q with None -> n | Some _ -> go (n + 1) in
        go 0)
  in
  Unix.sleepf 0.05;
  Alcotest.(check bool) "waiter blocked before close" false (Atomic.get drained);
  Workq.close q;
  Alcotest.(check bool) "closed" true (Workq.is_closed q);
  let popped = Domain.join consumer in
  Domain.join waiter;
  Alcotest.(check int) "nothing admitted was lost" 3 popped;
  Alcotest.(check bool) "drained after close + empty" true (Atomic.get drained)

(* -- Result cache durability ------------------------------------------ *)

let test_cache_sweeps_stale_tmp () =
  with_temp_dir @@ fun dir ->
  let c = Result_cache.open_ dir in
  Result_cache.store c ~key:"keep" (mk_table "keep");
  (* a crash between write and rename leaves a .tmp behind *)
  let tmp = Filename.concat dir "dead.tmp" in
  let oc = open_out_bin tmp in
  output_string oc "torn half-written entry";
  close_out oc;
  let c2 = Result_cache.open_ dir in
  Alcotest.(check bool) "stale tmp swept on open" false (Sys.file_exists tmp);
  Alcotest.(check bool) "committed entry survives the sweep" true
    (Result_cache.find c2 ~key:"keep" <> None)

let test_cache_store_leaves_no_tmp () =
  with_temp_dir @@ fun dir ->
  let c = Result_cache.open_ dir in
  List.iter
    (fun i -> Result_cache.store c ~key:(string_of_int i) (mk_table "x"))
    [ 1; 2; 3 ];
  let tmps =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".tmp")
  in
  Alcotest.(check (list string)) "rename committed every entry" [] tmps

let test_cache_key_injective () =
  let k parts = Result_cache.key ~parts in
  Alcotest.(check bool) "field shift changes the key" true
    (k [ "ab"; "c" ] <> k [ "a"; "bc" ]);
  Alcotest.(check bool) "separator in a part cannot collide" true
    (k [ "a/b" ] <> k [ "a"; "b" ]);
  Alcotest.(check string) "deterministic" (k [ "x"; "y" ]) (k [ "x"; "y" ])

(* -- Pool: admission, coalescing, cancellation, shutdown -------------- *)

module Pool = Trips_engine.Pool

(* a job that blocks until [gate] opens, so tests control overlap *)
let gated_job gate tag () =
  while not (Atomic.get gate) do
    Unix.sleepf 0.002
  done;
  mk_table tag

let wait_for ?(timeout_s = 5.) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () -. t0 > timeout_s then false
    else (
      Unix.sleepf 0.002;
      go ())
  in
  go ()

let test_pool_coalesces_identical_keys () =
  let pool = Pool.create ~workers:2 ~queue_capacity:8 () in
  let gate = Atomic.make false in
  let submit () =
    Pool.submit pool ~cache_key:"k" ~id:"job" (gated_job gate "shared")
  in
  let first = submit () in
  Alcotest.(check bool) "first admitted" true
    (match first with Pool.Admitted _ -> true | _ -> false);
  let rest = List.init 5 (fun _ -> submit ()) in
  List.iter
    (fun a ->
      match a with
      | Pool.Admitted _ -> ()
      | _ -> Alcotest.fail "identical submit not admitted")
    rest;
  Atomic.set gate true;
  let outcomes =
    List.map
      (function
        | Pool.Admitted t -> Pool.await t
        | _ -> Alcotest.fail "unreachable")
      (first :: rest)
  in
  let origins =
    List.map
      (function
        | Pool.Done (_, o) -> o | Pool.Error e -> Alcotest.fail e)
      outcomes
  in
  Alcotest.(check int) "exactly one computed" 1
    (List.length (List.filter (fun o -> o = Pool.Computed) origins));
  Alcotest.(check int) "everyone else coalesced" 5
    (List.length (List.filter (fun o -> o = Pool.Coalesced) origins));
  List.iter
    (function
      | Pool.Done (t, _) ->
        Alcotest.(check string) "one table for all"
          (Table.render (mk_table "shared"))
          (Table.render t)
      | Pool.Error e -> Alcotest.fail e)
    outcomes;
  let s = Pool.stats pool in
  Alcotest.(check int) "stats: executed once" 1 s.Pool.executed;
  Alcotest.(check int) "stats: coalesced" 5 s.Pool.coalesced;
  Pool.shutdown pool

let test_pool_sheds_when_full () =
  let pool = Pool.create ~workers:1 ~queue_capacity:1 () in
  let gate = Atomic.make false in
  (* distinct keys so nothing coalesces: worker occupied + queue of 1 *)
  let submit i =
    Pool.submit pool ~cache_key:(string_of_int i) ~id:"job"
      (gated_job gate (string_of_int i))
  in
  let a = submit 0 in
  Alcotest.(check bool) "worker job admitted" true
    (match a with Pool.Admitted _ -> true | _ -> false);
  Alcotest.(check bool) "worker picked it up" true
    (wait_for (fun () -> (Pool.stats pool).Pool.running = 1));
  let b = submit 1 in
  Alcotest.(check bool) "queue slot admitted" true
    (match b with Pool.Admitted _ -> true | _ -> false);
  let c = submit 2 in
  Alcotest.(check bool) "overflow is shed, not blocked" true (c = Pool.Shed);
  Alcotest.(check int) "stats count the shed" 1 (Pool.stats pool).Pool.shed;
  Atomic.set gate true;
  List.iter
    (function
      | Pool.Admitted t -> (
        match Pool.await t with
        | Pool.Done _ -> ()
        | Pool.Error e -> Alcotest.fail e)
      | _ -> ())
    [ a; b ];
  Pool.shutdown pool

let test_pool_cancel_queued_job_drops () =
  let pool = Pool.create ~workers:1 ~queue_capacity:4 () in
  let gate = Atomic.make false in
  let ran_b = Atomic.make false in
  (match Pool.submit pool ~id:"a" (gated_job gate "a") with
  | Pool.Admitted _ -> ()
  | _ -> Alcotest.fail "a not admitted");
  Alcotest.(check bool) "a running" true
    (wait_for (fun () -> (Pool.stats pool).Pool.running = 1));
  let tb =
    match
      Pool.submit pool ~cache_key:"b" ~id:"b" (fun () ->
          Atomic.set ran_b true;
          mk_table "b")
    with
    | Pool.Admitted t -> t
    | _ -> Alcotest.fail "b not admitted"
  in
  Alcotest.(check bool) "cancel detaches queued job" true (Pool.cancel tb);
  Atomic.set gate true;
  Pool.shutdown pool;
  let s = Pool.stats pool in
  Alcotest.(check bool) "cancelled job never ran" false (Atomic.get ran_b);
  Alcotest.(check int) "stats: dropped" 1 s.Pool.dropped;
  Alcotest.(check int) "stats: cancelled" 1 s.Pool.cancelled

let test_pool_shutdown_drains_and_rejects () =
  let pool = Pool.create ~workers:2 ~queue_capacity:8 () in
  let done_count = Atomic.make 0 in
  let tickets =
    List.init 6 (fun i ->
        match
          Pool.submit pool ~id:(string_of_int i) (fun () ->
              Unix.sleepf 0.01;
              Atomic.incr done_count;
              mk_table (string_of_int i))
        with
        | Pool.Admitted t -> t
        | _ -> Alcotest.fail "not admitted")
  in
  Pool.shutdown pool;
  Alcotest.(check int) "every admitted job drained" 6 (Atomic.get done_count);
  List.iter
    (fun t ->
      match Pool.await t with
      | Pool.Done _ -> ()
      | Pool.Error e -> Alcotest.fail e)
    tickets;
  (match Pool.submit pool ~id:"late" (fun () -> mk_table "late") with
  | Pool.Closed -> ()
  | _ -> Alcotest.fail "submit after shutdown must report Closed");
  Pool.shutdown pool (* idempotent *)

let test_pool_cache_hit_settles_immediately () =
  with_temp_dir @@ fun dir ->
  let cache = Result_cache.open_ dir in
  Result_cache.store cache ~key:"hot" (mk_table "hot");
  let pool = Pool.create ~workers:1 ~cache () in
  (match Pool.submit pool ~cache_key:"hot" ~id:"hot" (fun () ->
       Alcotest.fail "cache hit must not execute")
   with
  | Pool.Admitted t -> (
    match Pool.await t with
    | Pool.Done (table, Pool.Cache_hit) ->
      Alcotest.(check string) "stored table returned"
        (Table.render (mk_table "hot"))
        (Table.render table)
    | Pool.Done _ -> Alcotest.fail "expected Cache_hit origin"
    | Pool.Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "not admitted");
  Alcotest.(check int) "stats: cache hit" 1 (Pool.stats pool).Pool.cache_hits;
  Pool.shutdown pool

let () =
  Alcotest.run "engine"
    [
      ( "workq",
        [
          Alcotest.test_case "fifo and close" `Quick test_workq_fifo;
          Alcotest.test_case "bound blocks producers" `Quick test_workq_bound_blocks;
          Alcotest.test_case "try_push sheds at the bound" `Quick
            test_workq_try_push;
          Alcotest.test_case "wait_drained after close" `Quick
            test_workq_wait_drained;
        ] );
      ( "pool",
        [
          Alcotest.test_case "identical keys coalesce onto one job" `Quick
            test_pool_coalesces_identical_keys;
          Alcotest.test_case "full queue sheds explicitly" `Quick
            test_pool_sheds_when_full;
          Alcotest.test_case "cancelled queued job is dropped" `Quick
            test_pool_cancel_queued_job_drops;
          Alcotest.test_case "shutdown drains admitted, rejects new" `Quick
            test_pool_shutdown_drains_and_rejects;
          Alcotest.test_case "cache hit settles without executing" `Quick
            test_pool_cache_hit_settles_immediately;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "queue drains under more jobs than workers" `Quick
            test_engine_more_jobs_than_workers;
          Alcotest.test_case "warm sub-jobs precede finalize" `Quick
            test_engine_warm_subjobs_run_before_finalize;
          Alcotest.test_case "raising job fails, siblings complete" `Quick
            test_engine_failure_isolated;
          Alcotest.test_case "warm crash is not fatal" `Quick
            test_engine_warm_failure_surfaces_in_run;
          Alcotest.test_case "soft timeout" `Quick test_engine_soft_timeout;
        ] );
      ( "cache",
        [
          Alcotest.test_case "store/find roundtrip" `Quick test_cache_roundtrip;
          Alcotest.test_case "corrupt entry is a miss" `Quick
            test_cache_corrupt_entry_is_miss;
          Alcotest.test_case "hit returns stored table without run" `Quick
            test_engine_cache_hit_skips_run;
          Alcotest.test_case "stale tmp swept on open" `Quick
            test_cache_sweeps_stale_tmp;
          Alcotest.test_case "store commits atomically" `Quick
            test_cache_store_leaves_no_tmp;
          Alcotest.test_case "key builder is injective" `Quick
            test_cache_key_injective;
        ] );
    ]
