(* The differential fuzzer: generator and shrinker properties, the
   stable printers, backend semantics edge cases, corpus round-trips, and
   replay of the committed minimized repros under test/corpus/. *)

open Trips_fuzz
module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Lower = Trips_tir.Lower
module Cfg = Trips_tir.Cfg
module Driver = Trips_compiler.Driver
module Json = Trips_util.Json
open Ast.Infix

(* NaN-safe structural equality: [compare] totals floats, [(=)] does not
   ([nan = nan] is false). *)
let ast_eq a b = compare (a : Ast.program) b = 0

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Stable printers (Ast.pp / Cfg.pp)                                   *)
(* ------------------------------------------------------------------ *)

let golden_prog : Ast.program =
  {
    globals =
      [
        { Ast.gname = "gA"; size = 32; align = 8;
          init = Some [| (Ty.W8, 7L); (Ty.W4, -1L) |] };
      ];
    funcs =
      [
        { fname = "f"; params = [ ("d", Ty.I64) ]; ret = Some Ty.I64;
          body =
            [ if_ (v "d" <=: i 0) [ ret (i 1) ] [];
              ret (v "d" *: call "f" [ v "d" -: i 1 ]) ] };
        { fname = "main"; params = []; ret = Some Ty.I64;
          body =
            [ set "x" (i 0);
              for_ "k" (i 0) (i 4)
                [ set "x" (v "x" +: ld8 (g "gA" +: (v "k" <<: i 3))) ];
              set "w" (i 3);
              while_ (v "w" >: i 0) [ set "w" (v "w" -: i 1) ];
              stf (g "gA") (f 1.5);
              ret (v "x" ^: call "f" [ i 5 ]) ] };
      ];
  }

let golden_ast_text =
  "global gA[32] align 8 = {w8:7, w4:-1}\n\n\
   func f(d:i64) : i64 {\n\
  \  if (d <= 0) {\n\
  \    return 1;\n\
  \  }\n\
  \  return (d * f((d - 1)));\n\
   }\n\n\
   func main() : i64 {\n\
  \  x = 0;\n\
  \  for k = 0 .. 4 step 1 {\n\
  \    x = (x + load.i64.8[(&gA + (k << 3))]);\n\
  \  }\n\
  \  w = 3;\n\
  \  while (w > 0) {\n\
  \    w = (w - 1);\n\
  \  }\n\
  \  store.8[&gA] = 1.5;\n\
  \  return (x ^ f(5));\n\
   }\n"

let test_ast_pp_golden () =
  Alcotest.(check string) "Ast.pp golden" golden_ast_text
    (Ast.to_string golden_prog)

let test_cfg_pp_stable () =
  let render () = Cfg.to_string (Lower.program golden_prog) in
  let first = render () in
  List.iter
    (fun needle ->
      (* the lowering's structure is pinned by substrings, the full text
         by the determinism check below *)
      Alcotest.(check bool) ("Cfg.pp mentions " ^ needle) true
        (contains first needle))
    [ "global gA[32] align 8 = {w8:7, w4:-1}"; "func f:"; "func main:";
      "main.head0:"; "br "; "jmp "; "ret "; "store.8 [&gA + 0] = 1.5" ];
  Alcotest.(check string) "Cfg.pp deterministic" first (render ())

(* ------------------------------------------------------------------ *)
(* Generator properties                                                *)
(* ------------------------------------------------------------------ *)

let gen_seeds = List.init 25 (fun n -> n + 1)

let test_gen_well_typed () =
  List.iter
    (fun seed ->
      let p = Gen.gen_program ~seed () in
      (match Typecheck.check p with
      | Ok () -> ()
      | Error m -> Alcotest.failf "seed %d ill-typed: %s" seed m);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d has main" seed)
        true
        (List.exists (fun (f : Ast.func) -> f.fname = "main") p.funcs))
    gen_seeds

let test_gen_deterministic () =
  List.iter
    (fun seed ->
      let a = Gen.gen_program ~seed () in
      let b = Gen.gen_program ~seed () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d reproducible" seed)
        true (ast_eq a b);
      Alcotest.(check string)
        (Printf.sprintf "seed %d prints identically" seed)
        (Ast.to_string a) (Ast.to_string b))
    gen_seeds

let test_gen_terminates_in_interp () =
  List.iter
    (fun seed ->
      let p = Gen.gen_program ~seed () in
      let img = Trips_tir.Image.build p.globals in
      match Trips_tir.Interp.run_ast ~fuel:50_000_000 p img "main" [] with
      | _ -> ()
      | exception e ->
        Alcotest.failf "seed %d: interp raised %s" seed (Printexc.to_string e))
    gen_seeds

(* ------------------------------------------------------------------ *)
(* Shrinker properties                                                 *)
(* ------------------------------------------------------------------ *)

(* A cheap oracle that still exposes the injected bug: one preset, only
   the functional-execution diff.  Small programs keep each candidate
   evaluation in the low milliseconds. *)
let light_oracle =
  Oracle.make ~presets:[ Driver.o0 ] ~check_verify:false ~check_lint:false
    ~check_transval:false ~check_sim:false ~check_risc:false ~check_cfg:false
    ~inject:Oracle.Geni_bump ~fuel:5_000_000 ()

let light_gen_cfg = { Gen.default_cfg with Gen.max_stmts = 10 }

(* The first seed whose injected bug fires under the light oracle. *)
let light_failure =
  lazy
    (let rec find seed =
       if seed > 60 then Alcotest.fail "no divergent seed under 60"
       else
         let p = Gen.gen_program ~cfg:light_gen_cfg ~seed () in
         match Oracle.run light_oracle p with
         | Oracle.Fail (f :: _) -> (seed, p, f)
         | _ -> find (seed + 1)
     in
     find 1)

let test_shrink_properties () =
  let _seed, p, f = Lazy.force light_failure in
  let r = Shrink.shrink ~max_evals:500 light_oracle f p in
  (match Typecheck.check r.Shrink.sh_program with
  | Ok () -> ()
  | Error m -> Alcotest.failf "shrunk program ill-typed: %s" m);
  Alcotest.(check bool) "size decreased or unchanged" true
    (r.Shrink.sh_size <= r.Shrink.sh_orig_size);
  if r.Shrink.sh_steps > 0 then
    Alcotest.(check bool) "strictly smaller after steps" true
      (r.Shrink.sh_size < r.Shrink.sh_orig_size);
  Alcotest.(check bool) "still fails the oracle" true
    (Oracle.fails_like light_oracle f r.Shrink.sh_program);
  (* determinism: the shrinker is a greedy RNG-free descent *)
  let r2 = Shrink.shrink ~max_evals:500 light_oracle f p in
  Alcotest.(check bool) "shrink reproducible" true
    (ast_eq r.Shrink.sh_program r2.Shrink.sh_program);
  Alcotest.(check int) "same step count" r.Shrink.sh_steps r2.Shrink.sh_steps

let test_shrink_candidates_decrease () =
  let _, p, _ = Lazy.force light_failure in
  let sz = Typecheck.size_program p in
  (* the shrinker additionally filters for a strict decrease; candidates
     themselves must never grow *)
  Seq.iter
    (fun c ->
      Alcotest.(check bool) "candidate does not grow" true
        (Typecheck.size_program c <= sz))
    (Shrink.candidates p)

(* ------------------------------------------------------------------ *)
(* Injected bugs are caught and shrunk small (the PR acceptance bar)   *)
(* ------------------------------------------------------------------ *)

let test_injected_bug_caught_and_small () =
  let _, p, f = Lazy.force light_failure in
  let r = Shrink.shrink ~max_evals:500 light_oracle f p in
  Alcotest.(check bool) "repro is at most 20 statements" true
    (Typecheck.stmt_count r.Shrink.sh_program <= 20)

(* ------------------------------------------------------------------ *)
(* Backend semantics edge cases (interp vs EDGE vs sim vs CFG vs RISC) *)
(* ------------------------------------------------------------------ *)

(* Full-width oracle on one preset: functional EDGE, cycle simulator,
   lowered-CFG interpreter and RISC backend all diff against the AST
   interpreter.  Each program is a handful of statements, so the whole
   battery stays fast. *)
let audit_oracle =
  Oracle.make ~presets:[ Driver.o0 ] ~check_transval:false ~fuel:5_000_000 ()

let audit_main body : Ast.program =
  {
    globals = [];
    funcs = [ { fname = "main"; params = []; ret = Some Ty.I64; body } ];
  }

let audit_cases : (string * Ast.stmt list) list =
  [
    (* OCaml's Int64.div/rem saturate on min_int / -1 (no trap); every
       backend must agree. *)
    ("div min_int -1", [ ret (i64 Int64.min_int /: i (-1)) ]);
    ("rem min_int -1", [ ret (i64 Int64.min_int %: i (-1)) ]);
    ("div by -1", [ ret (i 17 /: i (-1)) ]);
    ("rem sign", [ ret ((i (-17) %: i 5) ^: (i 17 %: i (-5))) ]);
    (* Shift counts are masked to [0,63] ([Semantics.shift_amount]):
       64 behaves as 0, 65 as 1, -1 as 63. *)
    ( "shl 63/64/65",
      [ ret ((i 1 <<: i 63) ^: (i 1 <<: i 64) ^: (i 1 <<: i 65)) ] );
    ( "shr negative count",
      [ ret ((i64 Int64.min_int >>: i (-1)) ^: (i (-1) >>>: i 63)) ] );
    (* Ftoi is Int64.of_float: NaN and out-of-range both yield min_int. *)
    ("ftoi overflow", [ ret (Ast.Un (Ast.Ftoi, f 1e30)) ]);
    ("ftoi -overflow", [ ret (Ast.Un (Ast.Ftoi, f (-1e30))) ]);
    ("ftoi nan", [ ret (Ast.Un (Ast.Ftoi, f 0. /.: f 0.)) ]);
    ( "ftoi fraction",
      [ ret (Ast.Un (Ast.Ftoi, f 2.75) ^: Ast.Un (Ast.Ftoi, f (-2.75))) ] );
    (* Itof rounds to nearest for magnitudes beyond 2^53. *)
    ( "itof extremes",
      [ ret
          (Ast.Un (Ast.Ftoi, Ast.Un (Ast.Itof, i64 Int64.max_int))
          ^: Ast.Un (Ast.Ftoi, Ast.Un (Ast.Itof, i64 Int64.min_int))) ] );
    (* Unsigned compares treat the sign bit as magnitude. *)
    ( "unsigned compares",
      [ ret
          (Ast.Bin (Ast.Ult, i (-1), i 1)
          ^: (i 2 *: Ast.Bin (Ast.Ult, i 0, i64 Int64.min_int))
          ^: (i 4 *: Ast.Bin (Ast.Ule, i64 Int64.min_int, i64 Int64.min_int)))
      ] );
  ]

let test_semantics_edges () =
  List.iter
    (fun (name, body) ->
      match Oracle.run audit_oracle (audit_main body) with
      | Oracle.Pass -> ()
      | Oracle.Invalid m -> Alcotest.failf "%s: invalid: %s" name m
      | Oracle.Fail (fl :: _) ->
        Alcotest.failf "%s: %s/%s: %s" name fl.Oracle.f_check
          fl.Oracle.f_config fl.Oracle.f_detail
      | Oracle.Fail [] -> Alcotest.failf "%s: empty failure" name)
    audit_cases

let test_div_by_zero_traps () =
  (* Division by zero traps in the reference interpreter, so the oracle
     reports the program invalid rather than diffing undefined behavior —
     the generator only emits guarded divisors. *)
  match Oracle.run audit_oracle (audit_main [ ret (i 1 /: i 0) ]) with
  | Oracle.Invalid m ->
    Alcotest.(check bool) "mentions the trap" true
      (contains m "division by zero")
  | Oracle.Pass -> Alcotest.fail "division by zero passed"
  | Oracle.Fail _ -> Alcotest.fail "division by zero diffed instead of trapping"

(* ------------------------------------------------------------------ *)
(* Corpus round-trip and replay                                        *)
(* ------------------------------------------------------------------ *)

let test_corpus_roundtrip () =
  List.iter
    (fun seed ->
      let p = Gen.gen_program ~seed () in
      let p' = Corpus.of_jprogram (Corpus.jprogram p) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d JSON round-trips" seed)
        true (ast_eq p p'))
    [ 1; 2; 3; 4; 5 ];
  (* exact float/int64 extremes survive the string encodings *)
  let p = audit_main [ stf (i 0) (f (0. /. 0.)); ret (i64 Int64.min_int) ] in
  Alcotest.(check bool) "nan and min_int round-trip" true
    (ast_eq (Corpus.of_jprogram (Corpus.jprogram p)) p)

let test_corpus_entry_roundtrip () =
  let e =
    {
      Corpus.e_name = "t"; e_seed = 42; e_check = "exec"; e_config = "O0";
      e_detail = "d"; e_inject = Some "geni-bump";
      e_program = Gen.gen_program ~seed:3 ();
    }
  in
  let e' = Corpus.entry_of_json (Corpus.entry_to_json e) in
  Alcotest.(check bool) "entry round-trips" true (compare e e' = 0)

(* Replay every committed repro: re-apply the recorded injected bug and
   demand the oracle still fails with the recorded check kind. *)
(* dune runtest copies the corpus next to the executable; resolve it from
   there so `dune exec test/test_fuzz.exe` works from any directory. *)
let corpus_dir () =
  let beside = Filename.concat (Filename.dirname Sys.executable_name) "corpus" in
  if Sys.file_exists beside then beside else "corpus"

let test_corpus_replay () =
  let entries = Corpus.load_dir (corpus_dir ()) in
  Alcotest.(check bool) "corpus is non-empty" true (entries <> []);
  List.iter
    (fun (path, loaded) ->
      match loaded with
      | Error m -> Alcotest.failf "%s: %s" path m
      | Ok (e : Corpus.entry) ->
        (match Typecheck.check e.Corpus.e_program with
        | Ok () -> ()
        | Error m -> Alcotest.failf "%s: ill-typed: %s" path m);
        Alcotest.(check bool)
          (path ^ " is a small repro")
          true
          (Typecheck.stmt_count e.Corpus.e_program <= 20);
        let inject =
          match e.Corpus.e_inject with
          | None -> None
          | Some s -> (
            match Oracle.inject_of_string s with
            | Some _ as ok -> ok
            | None -> Alcotest.failf "%s: unknown inject %s" path s)
        in
        let base = Oracle.make ?inject ~fuel:5_000_000 () in
        let f =
          {
            Oracle.f_check = e.Corpus.e_check;
            f_config = e.Corpus.e_config;
            f_detail = e.Corpus.e_detail;
          }
        in
        let focused = Oracle.focus base f in
        Alcotest.(check bool)
          (Printf.sprintf "%s still fails %s/%s" path e.Corpus.e_check
             e.Corpus.e_config)
          true
          (Oracle.fails_like focused f e.Corpus.e_program))
    entries

(* ------------------------------------------------------------------ *)
(* Batch determinism                                                   *)
(* ------------------------------------------------------------------ *)

let test_batch_deterministic () =
  let run () =
    Batch.run_seq light_oracle ~gen_cfg:light_gen_cfg ~shrink_evals:200
      ~seed:1 ~count:4 ()
  in
  let a = run () and b = run () in
  Alcotest.(check string) "JSON reports byte-identical"
    (Json.to_string (Batch.to_json a))
    (Json.to_string (Batch.to_json b));
  Alcotest.(check int) "row per seed" 4 (List.length a.Batch.bt_rows)

let () =
  Alcotest.run "fuzz"
    [
      ( "printers",
        [
          Alcotest.test_case "Ast.pp golden" `Quick test_ast_pp_golden;
          Alcotest.test_case "Cfg.pp stable" `Quick test_cfg_pp_stable;
        ] );
      ( "generator",
        [
          Alcotest.test_case "well-typed" `Quick test_gen_well_typed;
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "terminates" `Quick test_gen_terminates_in_interp;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "properties" `Quick test_shrink_properties;
          Alcotest.test_case "candidates never grow" `Quick
            test_shrink_candidates_decrease;
          Alcotest.test_case "injected bug shrinks small" `Quick
            test_injected_bug_caught_and_small;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "edge cases agree" `Quick test_semantics_edges;
          Alcotest.test_case "div by zero traps" `Quick test_div_by_zero_traps;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "program round-trip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "entry round-trip" `Quick
            test_corpus_entry_roundtrip;
          Alcotest.test_case "replay committed repros" `Quick
            test_corpus_replay;
        ] );
      ( "batch",
        [
          Alcotest.test_case "deterministic reports" `Quick
            test_batch_deterministic;
        ] );
    ]
