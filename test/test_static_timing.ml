(* Static timing analyzer tests.

   Known-answer tests hand-build small scheduled blocks (chain, diamond,
   predicate fan-out, fanout tree) where the weighted critical path can be
   derived on paper from the model: 16-wide dispatch one cycle after
   fetch, unit/multi-cycle ALU latencies from Isa.latency, Manhattan OPN
   hops between tiles, and a GT resolve leg for branches.

   The property test generates random unpredicated single-block ALU
   programs and checks the analyzer's whole-program prediction is a lower
   bound on the cycle-level simulator — the analyzer models the optimistic
   core of the simulator (no contention, no ET serialization, no cache
   misses), so on blocks where every instruction fires it can never
   predict more cycles than the simulator measures. *)

open Trips_tir
open Trips_edge
open Trips_analysis
module Xv = Trips_harness.Timing_xv
module Core = Trips_sim.Core

let model = Timing.prototype

(* All known-answer blocks place every instruction on ET 0, tile (1,1):
   reads of low registers arrive from RT bank 0 at (0,1) over 1 hop,
   writes of low registers leave over 1 hop, branch resolution crosses
   2 hops to the GT at (0,0). *)
let place_all_on b et =
  b.Block.placement <- Array.make (Array.length b.Block.insts) et

let analyze ?(fname = "main") b = Timing.analyze_block ~fname b

let summary_of b = fst (analyze b)

let check_breakdown (s : Timing.summary) =
  let bk = s.Timing.s_breakdown in
  Alcotest.(check int)
    "breakdown sums to the critical path" s.Timing.s_crit
    (bk.Timing.bk_compute + bk.Timing.bk_route + bk.Timing.bk_memory
   + bk.Timing.bk_overhead)

(* -- chain ------------------------------------------------------------ *)

(* read r2 -> add -> add -> add -> add -> write r1, plus a return branch.
   Read arrives at dispatch_done(1) + 1 hop = 2; each add costs 1 cycle,
   0 hops; the write leg adds 1 hop: crit = 2 + 4 + 1 = 7.  The branch
   resolves at issue(1) + 1 + 2 hops = 4 < 7. *)
let chain_block () =
  let t = Builder.create "chain" in
  let r = Builder.read t 2 in
  let a1 = Builder.inst t (Isa.Bin Ast.Add) in
  Builder.arc t r a1 Isa.Op0;
  Builder.arc t r a1 Isa.Op1;
  let prev = ref a1 in
  for _ = 2 to 4 do
    let a = Builder.inst t (Isa.Bin Ast.Add) in
    Builder.arc t !prev a Isa.Op0;
    Builder.arc t !prev a Isa.Op1;
    prev := a
  done;
  Builder.write t 1 [ !prev ];
  ignore (Builder.inst t (Isa.Branch Isa.Xret));
  let b = Builder.finish t in
  place_all_on b 0;
  b

let test_chain () =
  let b = chain_block () in
  let s, ds = analyze b in
  Alcotest.(check int) "critical path" 7 s.Timing.s_crit;
  check_breakdown s;
  let bk = s.Timing.s_breakdown in
  Alcotest.(check int) "compute = four adds" 4 bk.Timing.bk_compute;
  Alcotest.(check int) "route = read leg + write leg" 2 bk.Timing.bk_route;
  Alcotest.(check int) "no memory on the path" 0 bk.Timing.bk_memory;
  Alcotest.(check int) "overhead = dispatch" 1 bk.Timing.bk_overhead;
  Alcotest.(check (list string)) "no findings" []
    (List.map (fun (d : Diag.t) -> d.Diag.cls) ds);
  (* every chain node is on the critical path *)
  Array.iteri
    (fun i ins ->
      match ins.Isa.op with
      | Isa.Bin _ -> Alcotest.(check int) "chain slack" 0 s.Timing.s_slack.(i)
      | _ -> ())
    b.Block.insts

(* -- diamond ---------------------------------------------------------- *)

(* a feeds both a neg (1 cycle) and an itof (4 cycles) which join in a
   final add: the itof side is critical.  a completes at 3; neg at 4,
   itof at 7; join at 8; write lands at 9.  (Unary middle ops keep every
   producer at <= 2 targets so the builder inserts no fanout movs.) *)
let test_diamond () =
  let t = Builder.create "diamond" in
  let r = Builder.read t 2 in
  let a = Builder.inst t (Isa.Bin Ast.Add) in
  Builder.arc t r a Isa.Op0;
  Builder.arc t r a Isa.Op1;
  let fast = Builder.inst t (Isa.Un Ast.Neg) in
  Builder.arc t a fast Isa.Op0;
  let slow = Builder.inst t (Isa.Un Ast.Itof) in
  Builder.arc t a slow Isa.Op0;
  let join = Builder.inst t (Isa.Bin Ast.Add) in
  Builder.arc t fast join Isa.Op0;
  Builder.arc t slow join Isa.Op1;
  Builder.write t 1 [ join ];
  ignore (Builder.inst t (Isa.Branch Isa.Xret));
  let b = Builder.finish t in
  place_all_on b 0;
  let s, _ = analyze b in
  Alcotest.(check int) "critical path" 9 s.Timing.s_crit;
  check_breakdown s;
  let index_of op =
    let found = ref (-1) in
    Array.iteri
      (fun i (ins : Isa.inst) -> if ins.Isa.op = op then found := i)
      b.Block.insts;
    !found
  in
  Alcotest.(check int) "itof completes at 7" 7
    s.Timing.s_completion.(index_of (Isa.Un Ast.Itof));
  Alcotest.(check int) "slow path is critical" 0
    s.Timing.s_slack.(index_of (Isa.Un Ast.Itof));
  Alcotest.(check int) "fast path has the latency gap" 3
    s.Timing.s_slack.(index_of (Isa.Un Ast.Neg))

(* -- predicate fan-out ------------------------------------------------ *)

(* A chain of movs each predicated on the previous one: predicate depth 4
   triggers the pred-chain finding. *)
let test_pred_chain () =
  let t = Builder.create "predchain" in
  let r = Builder.read t 2 in
  let m1 = Builder.inst t Isa.Mov in
  Builder.arc t r m1 Isa.Op0;
  let prev = ref m1 in
  for _ = 1 to 4 do
    let m = Builder.inst t ~pred:(!prev, true) Isa.Mov in
    Builder.arc t r m Isa.Op0;
    prev := m
  done;
  Builder.write t 1 [ !prev ];
  ignore (Builder.inst t (Isa.Branch Isa.Xret));
  let b = Builder.finish t in
  place_all_on b 0;
  let s, ds = analyze b in
  Alcotest.(check int) "predicate depth" 4 s.Timing.s_pred_depth;
  Alcotest.(check bool) "pred-chain finding" true
    (Analyzer.has_class "pred-chain" ds);
  Alcotest.(check bool) "warnings only" true
    (List.for_all (fun (d : Diag.t) -> d.Diag.sev <> Diag.Error) ds)

(* -- fanout tree ------------------------------------------------------ *)

(* A hand-built balanced mov tree: root add -> 2 movs -> 4 movs -> 8
   writes.  Root completes at 3, mov levels at 4 and 5, writes land at 6.
   Every tree path is symmetric, so all tree nodes have zero slack. *)
let test_fanout_tree () =
  let t = Builder.create "tree" in
  let r = Builder.read t 2 in
  let root = Builder.inst t (Isa.Bin Ast.Add) in
  Builder.arc t r root Isa.Op0;
  Builder.arc t r root Isa.Op1;
  let level1 =
    List.init 2 (fun _ ->
        let m = Builder.inst t Isa.Mov in
        Builder.arc t root m Isa.Op0;
        m)
  in
  let level2 =
    List.concat_map
      (fun p ->
        List.init 2 (fun _ ->
            let m = Builder.inst t Isa.Mov in
            Builder.arc t p m Isa.Op0;
            m))
      level1
  in
  List.iteri
    (fun k m ->
      Builder.write t (10 + (2 * k)) [ m ];
      Builder.write t (11 + (2 * k)) [ m ])
    level2;
  ignore (Builder.inst t (Isa.Branch Isa.Xret));
  let b = Builder.finish t in
  place_all_on b 0;
  let s, _ = analyze b in
  Alcotest.(check int) "critical path" 6 s.Timing.s_crit;
  check_breakdown s;
  Array.iteri
    (fun i (ins : Isa.inst) ->
      match ins.Isa.op with
      | Isa.Bin _ | Isa.Mov ->
        Alcotest.(check int) "tree slack" 0 s.Timing.s_slack.(i)
      | _ -> ())
    b.Block.insts

(* -- placement diagnostics -------------------------------------------- *)

(* Same chain, but the consumer of every hop sits across the mesh: the
   producer-consumer legs reach 6 hops and land on the critical path. *)
let test_route_critical () =
  let b = chain_block () in
  (* alternate corners: ET 0 is (1,1), ET 15 is (4,4) -> 6 hops *)
  b.Block.placement <-
    Array.mapi (fun i _ -> if i mod 2 = 0 then 0 else 15) b.Block.placement;
  let _, ds = analyze b in
  Alcotest.(check bool) "route-critical finding" true
    (Analyzer.has_class "route-critical" ds)

let test_et_hotspot () =
  (* ten independent adds all placed on one tile *)
  let t = Builder.create "hotspot" in
  let r = Builder.read t 2 in
  for k = 0 to 9 do
    let a = Builder.inst t (Isa.Bin Ast.Add) in
    Builder.arc t r a Isa.Op0;
    Builder.arc t r a Isa.Op1;
    Builder.write t (10 + k) [ a ]
  done;
  ignore (Builder.inst t (Isa.Branch Isa.Xret));
  let b = Builder.finish t in
  place_all_on b 0;
  let s, ds = analyze b in
  Alcotest.(check bool) "et-hotspot finding" true
    (Analyzer.has_class "et-hotspot" ds);
  Alcotest.(check int) "tile load counts every instruction"
    (Array.length b.Block.insts)
    s.Timing.s_tile_load.(0)

(* -- latency table agreement ------------------------------------------ *)

let test_latency_agreement () =
  let opcodes =
    [
      Isa.Bin Ast.Add; Isa.Bin Ast.Sub; Isa.Bin Ast.Mul; Isa.Bin Ast.Div;
      Isa.Bin Ast.Rem; Isa.Bin Ast.And; Isa.Bin Ast.Or; Isa.Bin Ast.Xor;
      Isa.Bin Ast.Shl; Isa.Bin Ast.Lsr; Isa.Bin Ast.Asr; Isa.Bin Ast.Lt;
      Isa.Bin Ast.Eq; Isa.Bin Ast.Ne; Isa.Bin Ast.Fadd; Isa.Bin Ast.Fsub;
      Isa.Bin Ast.Fmul; Isa.Bin Ast.Fdiv; Isa.Bin Ast.Flt; Isa.Bin Ast.Feq;
      Isa.Un Ast.Neg; Isa.Un Ast.Not; Isa.Un Ast.Itof; Isa.Un Ast.Ftoi;
      Isa.Geni 7L; Isa.Genf 1.5; Isa.Mov; Isa.Null;
      Isa.Load (Ty.I64, Ty.W8, 0); Isa.Store (Ty.W8, 1); Isa.Branch Isa.Xret;
    ]
  in
  List.iter
    (fun op ->
      Alcotest.(check int)
        ("latency " ^ Isa.opcode_name op)
        (Isa.latency op) (Timing.op_latency op))
    opcodes

(* -- diag pass field --------------------------------------------------- *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_diag_pass_json () =
  let b = chain_block () in
  let _, ds = Timing.analyze_block ~fname:"main" { b with Block.placement = [||] } in
  Alcotest.(check bool) "skipped diag present" true
    (Analyzer.has_class "timing-skipped" ds);
  List.iter
    (fun d ->
      Alcotest.(check string) "pass field" "timing" d.Diag.pass;
      let json = Trips_util.Json.to_string (Diag.to_json d) in
      Alcotest.(check bool) "json carries pass" true
        (contains json "\"pass\": \"timing\""))
    ds;
  (* the other passes stamp their own names *)
  let structural = Structure.check ~fname:"main" b in
  List.iter
    (fun (d : Diag.t) ->
      Alcotest.(check string) "structure pass" "structure" d.Diag.pass)
    structural

(* -- property: prediction is a lower bound on the simulator ------------ *)

let gen_block_program =
  QCheck.Gen.(
    let* n_ops = int_range 3 40 in
    let* seeds = list_size (return n_ops) (int_bound 1_000_000) in
    let* use_mul = bool in
    return (n_ops, seeds, use_mul))

let build_random_program (_n_ops, seeds, use_mul) : Block.program =
  let t = Builder.create "main.entry" in
  let r2 = Builder.read t 2 in
  let r3 = Builder.read t 3 in
  let producers = ref [| r2; r3 |] in
  List.iteri
    (fun idx seed ->
      let pool = !producers in
      let np = Array.length pool in
      let pick k = pool.(k mod np) in
      let op =
        match (seed + idx) mod (if use_mul then 4 else 3) with
        | 0 -> Isa.Bin Ast.Add
        | 1 -> Isa.Bin Ast.Xor
        | 2 -> Isa.Bin Ast.Sub
        | _ -> Isa.Bin Ast.Mul
      in
      let a = Builder.inst t op in
      Builder.arc t (pick seed) a Isa.Op0;
      Builder.arc t (pick (seed / 7)) a Isa.Op1;
      producers := Array.append pool [| a |])
    seeds;
  let pool = !producers in
  Builder.write t 1 [ pool.(Array.length pool - 1) ];
  ignore (Builder.inst t (Isa.Branch Isa.Xret));
  let b = Builder.finish t in
  {
    Block.globals = [];
    funcs = [ { Block.fname = "main"; entry = "main.entry"; blocks = [ b ] } ];
  }

let prop_lower_bound =
  QCheck.Test.make ~count:60 ~name:"static prediction <= simulated cycles"
    (QCheck.make gen_block_program)
    (fun case ->
      let prog = build_random_program case in
      let image = Image.build [] in
      let predicted =
        (Xv.predict_program prog image ~entry:"main" ~args:[]).Xv.pr_cycles
      in
      let r = Core.run prog image ~entry:"main" ~args:[] in
      let measured = r.Core.timing.Core.cycles in
      if predicted > measured then
        QCheck.Test.fail_reportf "predicted %d > measured %d" predicted measured
      else true)

(* The same bound must hold with the compiler's real placement on a
   scheduled multi-instruction block (deterministic spot check). *)
let test_lower_bound_scheduled () =
  let prog = build_random_program (30, List.init 30 (fun i -> (i * 37) + 11), true) in
  Trips_compiler.Schedule.place_program prog;
  let image = Image.build [] in
  let predicted =
    (Xv.predict_program prog image ~entry:"main" ~args:[]).Xv.pr_cycles
  in
  let r = Core.run prog image ~entry:"main" ~args:[] in
  Alcotest.(check bool) "predicted <= measured" true
    (predicted <= r.Core.timing.Core.cycles)

(* -- composition state ------------------------------------------------- *)

(* Stepping the same summary twice with correct prediction pipelines the
   fetches: the second block's commit lands fetch_interval later, not a
   full block latency later. *)
let test_composition_pipelining () =
  let b = chain_block () in
  let s = summary_of b in
  let st1 = Timing.create model in
  Timing.step st1 s ~exit_idx:0 ~prev_correct:true;
  let one = Timing.cycles st1 in
  Timing.step st1 s ~exit_idx:0 ~prev_correct:true;
  let two = Timing.cycles st1 in
  Alcotest.(check int) "pipelined second block" (one + model.Timing.fetch_interval)
    two;
  (* a misprediction costs the redirect penalty from resolution *)
  let st2 = Timing.create model in
  Timing.step st2 s ~exit_idx:0 ~prev_correct:true;
  Timing.step st2 s ~exit_idx:0 ~prev_correct:false;
  Alcotest.(check bool) "redirect is slower" true
    (Timing.cycles st2 > two);
  Alcotest.(check int) "mispredict counted" 1 (Timing.mispredicts st2)

let () =
  Alcotest.run "static_timing"
    [
      ( "known-answer",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "diamond" `Quick test_diamond;
          Alcotest.test_case "pred-chain" `Quick test_pred_chain;
          Alcotest.test_case "fanout-tree" `Quick test_fanout_tree;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "route-critical" `Quick test_route_critical;
          Alcotest.test_case "et-hotspot" `Quick test_et_hotspot;
          Alcotest.test_case "diag-pass-json" `Quick test_diag_pass_json;
        ] );
      ( "model",
        [
          Alcotest.test_case "latency-agreement" `Quick test_latency_agreement;
          Alcotest.test_case "composition-pipelining" `Quick
            test_composition_pipelining;
          Alcotest.test_case "lower-bound-scheduled" `Quick
            test_lower_bound_scheduled;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_lower_bound ] );
    ]
