(* Tests for the trips_serve subsystem: the HTTP front door, the JSON
   codec and protocol, the latency histogram, and an end-to-end daemon
   round trip asserting that concurrent identical requests run exactly
   one underlying job. *)

module Json = Trips_util.Json
module Histogram = Trips_util.Histogram
module Http = Trips_serve.Http
module Protocol = Trips_serve.Protocol
module Server = Trips_serve.Server
module Client = Trips_serve.Client
module Service = Trips_harness.Service
module Pool = Trips_engine.Pool

let ok_request = function
  | Result.Ok (r : Http.request) -> r
  | Result.Error e -> Alcotest.fail ("parse_request: " ^ e)

(* -- HTTP parsing ------------------------------------------------------ *)

let test_http_get_roundtrip () =
  let r =
    ok_request
      (Http.parse_request
         "GET /api/v1/verbs?x=1&name=a%20b HTTP/1.1\r\n\
          Host: localhost\r\nAccept: */*\r\n\r\n")
  in
  Alcotest.(check string) "method" "GET" r.Http.meth;
  Alcotest.(check string) "path" "/api/v1/verbs" r.Http.path;
  Alcotest.(check (list (pair string string)))
    "query percent-decoded"
    [ ("x", "1"); ("name", "a b") ]
    r.Http.query;
  Alcotest.(check string) "version" "HTTP/1.1" r.Http.version;
  Alcotest.(check (option string)) "header lookup is case-insensitive"
    (Some "localhost") (Http.header r "HOST");
  Alcotest.(check string) "no body" "" r.Http.body

let test_http_post_body () =
  let body = {|{"bench":"fft"}|} in
  let raw =
    Printf.sprintf
      "POST /api/v1/timing HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
      (String.length body) body
  in
  let r = ok_request (Http.parse_request raw) in
  Alcotest.(check string) "body delivered intact" body r.Http.body

let test_http_lf_only_head () =
  (* bare-LF separators are tolerated, as from hand-typed netcat *)
  let r =
    ok_request (Http.parse_request "GET /health HTTP/1.0\nHost: x\n\n")
  in
  Alcotest.(check string) "path" "/health" r.Http.path;
  Alcotest.(check string) "version" "HTTP/1.0" r.Http.version

let expect_error what = function
  | Result.Ok (_ : Http.request) -> Alcotest.fail (what ^ ": expected error")
  | Result.Error (_ : string) -> ()

let test_http_malformed () =
  expect_error "bad version"
    (Http.parse_request "GET / HTTP/2.0\r\n\r\n");
  expect_error "no request line" (Http.parse_request "\r\n\r\n");
  expect_error "body shorter than content-length"
    (Http.parse_request "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
  expect_error "negative content-length"
    (Http.parse_request "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n");
  expect_error "no blank line" (Http.parse_request "GET / HTTP/1.1\r\n")

let test_http_response_roundtrip () =
  let raw =
    Http.response_string
      ~headers:[ ("Retry-After", "1") ]
      ~status:429 ~body:{|{"ok":false}|} ()
  in
  match Http.parse_response raw with
  | Result.Error e -> Alcotest.fail e
  | Result.Ok resp ->
    Alcotest.(check int) "status" 429 resp.Http.status;
    Alcotest.(check (option string)) "custom header" (Some "1")
      (Http.response_header resp "retry-after");
    Alcotest.(check (option string)) "content-type defaulted"
      (Some "application/json")
      (Http.response_header resp "content-type");
    Alcotest.(check string) "body" {|{"ok":false}|} resp.Http.r_body

(* -- JSON parser ------------------------------------------------------- *)

let parse_ok s =
  match Json.parse s with
  | Result.Ok v -> v
  | Result.Error e -> Alcotest.fail (s ^ ": " ^ e)

let test_json_parse_values () =
  Alcotest.(check (option string)) "string member" (Some "fft")
    (Json.mem_str "bench" (parse_ok {|{"bench":"fft","n":3}|}));
  Alcotest.(check (option int)) "int member" (Some 3)
    (Json.mem_int "n" (parse_ok {|{"bench":"fft","n":3}|}));
  Alcotest.(check (option bool)) "bool" (Some true)
    (Json.as_bool (parse_ok "true"));
  (match Json.as_float (parse_ok "-1.5e2") with
  | Some f -> Alcotest.(check (float 1e-9)) "float" (-150.) f
  | None -> Alcotest.fail "float");
  Alcotest.(check (option string)) "unicode escape" (Some "a\xc3\xa9b")
    (Json.as_str (parse_ok {|"aéb"|}));
  match Json.as_list (parse_ok {|[1, "x", null]|}) with
  | Some [ _; _; Json.Null ] -> ()
  | _ -> Alcotest.fail "list shape"

let test_json_parse_rejects () =
  let bad s =
    match Json.parse s with
    | Result.Ok _ -> Alcotest.fail ("accepted: " ^ s)
    | Result.Error _ -> ()
  in
  bad "";
  bad "{";
  bad {|{"a":1,}|};
  bad "[1 2]";
  bad {|"unterminated|};
  bad "01";
  bad {|{"a":1} trailing|};
  bad "nul"

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "he\"llo\n");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.25);
        ("b", Json.Bool false);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Str "x" ]);
      ]
  in
  Alcotest.(check bool) "to_string then parse is identity" true
    (parse_ok (Json.to_string v) = v)

(* -- Protocol ---------------------------------------------------------- *)

let test_protocol_routes () =
  let is_run p v =
    match Protocol.route_of_path p with
    | Protocol.Run x -> x = v
    | _ -> false
  in
  Alcotest.(check bool) "health" true
    (Protocol.route_of_path "/health" = Protocol.Health);
  Alcotest.(check bool) "metrics" true
    (Protocol.route_of_path "/metrics" = Protocol.Metrics);
  Alcotest.(check bool) "catalog" true
    (Protocol.route_of_path "/api/v1/verbs" = Protocol.Catalog);
  Alcotest.(check bool) "verb route" true (is_run "/api/v1/timing" "timing");
  Alcotest.(check bool) "nested is unknown" true
    (Protocol.route_of_path "/api/v1/timing/x" = Protocol.Unknown);
  Alcotest.(check bool) "root is unknown" true
    (Protocol.route_of_path "/" = Protocol.Unknown)

let test_protocol_parse_run_request () =
  (match Protocol.parse_run_request ~verb_token:"timing" {|{"bench":"fft"}|} with
  | Result.Ok r ->
    Alcotest.(check string) "verb" "timing" (Service.verb_name r.Service.verb);
    Alcotest.(check string) "bench" "fft" r.Service.bench;
    Alcotest.(check string) "preset defaulted" "C" r.Service.preset
  | Result.Error e -> Alcotest.fail e);
  (match
     Protocol.parse_run_request ~verb_token:"run"
       {|{"verb":"lint","bench":"fft","preset":"H"}|}
   with
  | Result.Ok r ->
    Alcotest.(check string) "verb from body" "lint"
      (Service.verb_name r.Service.verb);
    Alcotest.(check string) "preset" "H" r.Service.preset
  | Result.Error e -> Alcotest.fail e);
  let bad token body =
    match Protocol.parse_run_request ~verb_token:token body with
    | Result.Ok _ -> Alcotest.fail ("accepted: " ^ token ^ " " ^ body)
    | Result.Error (_ : string) -> ()
  in
  (match
     Protocol.parse_run_request ~verb_token:"simulate"
       {|{"bench":"fft","mode":"sampled"}|}
   with
  | Result.Ok r ->
    Alcotest.(check string) "mode" "sampled" r.Service.mode
  | Result.Error e -> Alcotest.fail e);
  bad "timing" "not json";
  bad "timing" {|{"nobench":1}|};
  bad "timing" {|{"bench":"nosuchbench"}|};
  bad "frobnicate" {|{"bench":"fft"}|};
  bad "timing" {|{"bench":"fft","preset":"O9"}|};
  bad "timing" {|{"bench":"fft","mode":"sampled"}|};
  bad "simulate" {|{"bench":"fft","mode":"warp"}|};
  bad "run" {|{"bench":"fft"}|}

let test_service_cache_key_distinguishes () =
  let key verb bench preset =
    match Service.make ~mode:"" ~verb ~bench ~preset with
    | Result.Ok r -> Service.cache_key r
    | Result.Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "verb matters" true
    (key "timing" "fft" "C" <> key "simulate" "fft" "C");
  Alcotest.(check bool) "bench matters" true
    (key "timing" "fft" "C" <> key "timing" "conv" "C");
  Alcotest.(check bool) "preset matters" true
    (key "timing" "fft" "C" <> key "timing" "fft" "H");
  Alcotest.(check string) "stable across calls" (key "lint" "fft" "C")
    (key "lint" "fft" "C");
  let keym mode =
    match Service.make ~mode ~verb:"simulate" ~bench:"fft" ~preset:"C" with
    | Result.Ok r -> Service.cache_key r
    | Result.Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "mode matters" true (keym "detail" <> keym "sampled");
  Alcotest.(check string) "empty mode is detail" (keym "") (keym "detail")

(* -- Histogram --------------------------------------------------------- *)

let test_histogram_quantiles () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.observe h (float_of_int i *. 1e-4) (* 0.1ms .. 100ms *)
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  let p50 = Histogram.quantile h 0.5 and p99 = Histogram.quantile h 0.99 in
  Alcotest.(check bool) "p50 near the middle" true (p50 > 0.02 && p50 < 0.1);
  Alcotest.(check bool) "p99 above p50" true (p99 >= p50);
  Alcotest.(check bool) "p99 at most the max" true
    (p99 <= Histogram.max_value h +. 1e-9)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.observe a) [ 0.001; 0.002 ];
  List.iter (Histogram.observe b) [ 0.004; 0.008; 0.016 ];
  Histogram.merge_into ~dst:a b;
  Alcotest.(check int) "merged count" 5 (Histogram.count a);
  Alcotest.(check (float 1e-9)) "merged total" 0.031 (Histogram.total a);
  Alcotest.(check (float 1e-9)) "merged max" 0.016 (Histogram.max_value a)

(* -- End to end -------------------------------------------------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "trips-serve-test-%d-%d" (Unix.getpid ()) (Random.int 100000))
  in
  Trips_engine.Result_cache.mkdir_p dir;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then (
          Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
          Unix.rmdir p)
        else Sys.remove p
      in
      try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

let host = "127.0.0.1"

let with_server ?(workers = 2) ?(queue_capacity = 32) ?cache_dir f =
  let t =
    Server.start
      {
        Server.default_config with
        Server.workers;
        queue_capacity;
        cache_dir;
      }
  in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t)

let test_e2e_health_and_metrics () =
  with_server @@ fun t ->
  let port = Server.port t in
  (match Client.get ~host ~port "/health" with
  | Result.Ok resp ->
    Alcotest.(check int) "health 200" 200 resp.Http.status;
    Alcotest.(check (option string)) "health ok" (Some "ok")
      (Json.mem_str "status" (parse_ok resp.Http.r_body))
  | Result.Error e -> Alcotest.fail e);
  (match Client.get ~host ~port "/metrics" with
  | Result.Ok resp ->
    Alcotest.(check int) "metrics 200" 200 resp.Http.status;
    let v = parse_ok resp.Http.r_body in
    Alcotest.(check bool) "metrics carry pool stats" true
      (Json.member "pool" v <> None);
    Alcotest.(check bool) "metrics carry latency histogram" true
      (Json.member "latency" v <> None)
  | Result.Error e -> Alcotest.fail e);
  (match Client.get ~host ~port "/no/such/path" with
  | Result.Ok resp -> Alcotest.(check int) "unknown path is 404" 404 resp.Http.status
  | Result.Error e -> Alcotest.fail e);
  (match Client.request ~host ~port ~meth:"POST" ~path:"/health" () with
  | Result.Ok resp -> Alcotest.(check int) "POST /health is 405" 405 resp.Http.status
  | Result.Error e -> Alcotest.fail e);
  match Client.post_json ~host ~port "/api/v1/timing" "{not json" with
  | Result.Ok resp -> Alcotest.(check int) "bad body is 400" 400 resp.Http.status
  | Result.Error e -> Alcotest.fail e

(* The tentpole invariant: N concurrent identical requests, one computed
   job; every client sees the same table. *)
let test_e2e_concurrent_identical_requests_compute_once () =
  with_temp_dir @@ fun cache_dir ->
  with_server ~workers:2 ~cache_dir @@ fun t ->
  let port = Server.port t in
  let n = 8 in
  let body =
    match Service.make ~mode:"" ~verb:"simulate" ~bench:"fft" ~preset:"C" with
    | Result.Ok r -> Protocol.run_request_body r
    | Result.Error e -> Alcotest.fail e
  in
  let results = Array.make n (Result.Error "unset") in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            results.(i) <-
              Client.post_json ~host ~port "/api/v1/simulate" body)
          ())
  in
  List.iter Thread.join threads;
  let bodies =
    Array.to_list results
    |> List.map (function
         | Result.Error e -> Alcotest.fail e
         | Result.Ok (resp : Http.response) ->
           Alcotest.(check int) "every client got 200" 200 resp.Http.status;
           resp.Http.r_body)
  in
  let result_field b =
    match Json.member "result" (parse_ok b) with
    | Some v -> Json.to_string v
    | None -> Alcotest.fail "response without result field"
  in
  let first = result_field (List.hd bodies) in
  List.iter
    (fun b -> Alcotest.(check string) "identical tables" first (result_field b))
    bodies;
  List.iter
    (fun b ->
      match Json.mem_str "origin" (parse_ok b) with
      | Some ("computed" | "coalesced" | "cache") -> ()
      | o -> Alcotest.fail ("bad origin: " ^ Option.value ~default:"?" o))
    bodies;
  let s = Server.pool_stats t in
  Alcotest.(check int) "exactly one job computed" 1 s.Pool.executed;
  Alcotest.(check int) "every request accounted for" n
    (s.Pool.coalesced + s.Pool.cache_hits + 1)

let test_e2e_shutdown_rejects_new_work () =
  let t =
    Server.start
      { Server.default_config with Server.workers = 1; queue_capacity = 4 }
  in
  let port = Server.port t in
  Server.stop t;
  match Client.get ~timeout_s:2. ~host ~port "/health" with
  | Result.Ok (_ : Http.response) ->
    Alcotest.fail "stopped server must not answer"
  | Result.Error (_ : string) -> ()

let () =
  Random.self_init ();
  Alcotest.run "serve"
    [
      ( "http",
        [
          Alcotest.test_case "GET roundtrip" `Quick test_http_get_roundtrip;
          Alcotest.test_case "POST body" `Quick test_http_post_body;
          Alcotest.test_case "LF-only head" `Quick test_http_lf_only_head;
          Alcotest.test_case "malformed requests rejected" `Quick
            test_http_malformed;
          Alcotest.test_case "response roundtrip" `Quick
            test_http_response_roundtrip;
        ] );
      ( "json",
        [
          Alcotest.test_case "values" `Quick test_json_parse_values;
          Alcotest.test_case "rejects" `Quick test_json_parse_rejects;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "routes" `Quick test_protocol_routes;
          Alcotest.test_case "run request validation" `Quick
            test_protocol_parse_run_request;
          Alcotest.test_case "cache keys distinguish requests" `Quick
            test_service_cache_key_distinguishes;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "health, metrics, errors" `Quick
            test_e2e_health_and_metrics;
          Alcotest.test_case "concurrent identical requests compute once"
            `Quick test_e2e_concurrent_identical_requests_compute_once;
          Alcotest.test_case "stopped server refuses connections" `Quick
            test_e2e_shutdown_rejects_new_work;
        ] );
    ]
