(* Global abstract interpretation: known-answer range/alias facts on
   hand-written programs, the seeded-bug mutation suite (every broken
   analysis mode must be refuted by the validator's clean re-derivation),
   and the fixpoint/idempotence property of the extended optimization
   pipeline (local passes + fact-driven global passes). *)

module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Cfg = Trips_tir.Cfg
module Lower = Trips_tir.Lower
module Opt = Trips_tir.Opt
module Driver = Trips_compiler.Driver
module Absint = Trips_analysis.Absint
module Diag = Trips_analysis.Diag
module Registry = Trips_workloads.Registry
open Ast.Infix

let prog ?(globals = [ Ast.global "gA" 64; Ast.global "gB" 64 ]) body =
  Ast.program ~globals [ Ast.func "main" ~ret:Ty.I64 body ]

let analyzed ?bug p =
  let cfg = Lower.program p in
  (cfg, Absint.analyze ?bug cfg)

let main_func (cfg : Cfg.program) =
  List.find (fun (f : Cfg.func) -> f.Cfg.name = "main") cfg.Cfg.funcs

(* -- known-answer facts ---------------------------------------------- *)

let test_const_branch () =
  let p = prog [ set "x" (i 5); if_ (v "x" <: i 3) [ ret (i 1) ] [ ret (i 2) ] ] in
  let cfg, t = analyzed p in
  let f = main_func cfg in
  let dirs =
    List.filter_map
      (fun (b : Cfg.block) ->
        Absint.branch_dir t ~fname:"main" ~label:b.Cfg.label)
      f.Cfg.blocks
  in
  Alcotest.(check (list bool)) "5 < 3 is provably false" [ false ] dirs;
  let dead =
    List.filter
      (fun (b : Cfg.block) ->
        not (Absint.reachable t ~fname:"main" ~label:b.Cfg.label))
      f.Cfg.blocks
  in
  Alcotest.(check bool) "the then-block is unreachable" true (dead <> [])

let test_loop_exit_range () =
  let p =
    prog
      [ set "k" (i 0);
        while_ (v "k" <: i 10) [ set "k" (v "k" +: i 1) ];
        ret (v "k") ]
  in
  let cfg, t = analyzed p in
  let f = main_func cfg in
  let checked = ref false in
  List.iter
    (fun (b : Cfg.block) ->
      match b.Cfg.term with
      | Cfg.Ret (Some (Cfg.Reg r)) -> (
        match Absint.range_at t ~fname:"main" ~label:b.Cfg.label r with
        | Some (lo, _) ->
          checked := true;
          Alcotest.(check int64) "loop exit: k >= 10 exactly" 10L lo
        | None -> Alcotest.fail "no range for the returned vreg")
      | _ -> ())
    f.Cfg.blocks;
  Alcotest.(check bool) "found a Ret of a vreg" true !checked

let find_def (f : Cfg.func) pred =
  let hit = ref None in
  List.iter
    (fun (b : Cfg.block) ->
      List.iteri
        (fun i ins -> if !hit = None && pred ins then hit := Some (b.Cfg.label, i))
        b.Cfg.ins)
    f.Cfg.blocks;
  match !hit with Some x -> x | None -> Alcotest.fail "definition not found"

let test_subword_load_range () =
  let p = prog [ set "x" (ld1 (g "gA")); ret (v "x") ] in
  let cfg, t = analyzed p in
  let label, idx =
    find_def (main_func cfg) (function
      | Cfg.Load (_, Ty.W1, _, _, _) -> true
      | _ -> false)
  in
  Alcotest.(check (option (pair int64 int64)))
    "byte loads zero-extend into [0, 255]"
    (Some (0L, 255L))
    (Absint.def_value t ~fname:"main" ~label idx)

let test_mask_range () =
  let p = prog [ set "x" (ld8 (g "gA") &: i 7); ret (v "x") ] in
  let cfg, t = analyzed p in
  let label, idx =
    find_def (main_func cfg) (function
      | Cfg.Bin (Ast.And, _, _, _) -> true
      | _ -> false)
  in
  Alcotest.(check (option (pair int64 int64)))
    "x & 7 lands in [0, 7]"
    (Some (0L, 7L))
    (Absint.def_value t ~fname:"main" ~label idx)

let test_separation () =
  let p = prog [ st8 (g "gA") (i 1); st8 (g "gB") (i 2); ret (i 0) ] in
  let _, t = analyzed p in
  let sep = Absint.separated t ~fname:"main" in
  let acc g off w : Cfg.operand * int * Ty.width = (Cfg.Sym g, off, w) in
  Alcotest.(check bool) "distinct globals are disjoint" true
    (sep (acc "gA" 0 Ty.W8) (acc "gB" 0 Ty.W8));
  Alcotest.(check bool) "overlapping offsets are not" false
    (sep (acc "gA" 0 Ty.W8) (acc "gA" 4 Ty.W8));
  Alcotest.(check bool) "adjacent words are disjoint" true
    (sep (acc "gA" 0 Ty.W4) (acc "gA" 4 Ty.W4));
  Alcotest.(check bool) "out-of-bounds access proves nothing" false
    (sep (acc "gA" 60 Ty.W8) (acc "gB" 0 Ty.W8))

let test_diags () =
  let p =
    prog
      [ set "x" (ld8 (g "gA"));
        set "z" (i 0);
        set "d" (v "x" /: v "z");
        set "s" (v "x" <<: i 64);
        st8 (g "gB") (i 3);
        if_ (i 1 <: i 2) [ st8 (g "gA") (v "d") ] [ st8 (g "gA") (v "s") ];
        ret (i 0) ]
  in
  let _, t = analyzed p in
  let classes = List.map (fun (d : Diag.t) -> d.Diag.cls) (Absint.diags t) in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " reported") true (List.mem c classes))
    [ "trap-div"; "shift-range"; "dead-branch"; "alias-pairs" ]

let test_load_load_relax () =
  (* A store the unknown-address load may alias pins that load in place,
     while a provably-disjoint load jumps ahead of both — inverting the
     two loads' LSID order.  Loads commute unconditionally, so the
     validator must accept the permutation (regression: check_relax once
     demanded disjointness for flipped load-load pairs too). *)
  let p =
    prog
      ~globals:[ Ast.global "gA" 64; Ast.global "gB" 64; Ast.global "gC" 64 ]
      [ st8 (g "gC") (i 1);
        set "y" (ld8 (g "gA"));
        set "x" (ld8 (g "gA" +: v "y"));
        set "z" (ld8 (g "gB"));
        ret (v "x" +: v "z") ]
  in
  let _, gs = Driver.compile_stats ~validate:true Driver.compiled p in
  Alcotest.(check bool) "relaxation fired" true (gs.Driver.gs_relaxed > 0)

let test_nan_relax () =
  (* A NaN float constant in a relaxed block: the validator's structural
     pre/post comparison must treat [Genf nan] as equal to itself
     (regression: polymorphic (=) made check_relax report the identical
     instruction as rewritten, because nan <> nan). *)
  let p =
    prog
      ~globals:[ Ast.global "gA" 64; Ast.global "gB" 64; Ast.global "gC" 64 ]
      [ st8 (g "gC") (f Float.nan);
        set "y" (ld8 (g "gA"));
        set "x" (ld8 (g "gA" +: v "y"));
        set "z" (ld8 (g "gB"));
        ret (v "x" +: v "z") ]
  in
  let _, gs = Driver.compile_stats ~validate:true Driver.compiled p in
  Alcotest.(check bool) "relaxation fired" true (gs.Driver.gs_relaxed > 0)

(* -- seeded-bug mutation suite ---------------------------------------- *)

(* Each broken analysis mode gets a program where the corrupted
   compiler-side fixpoint derives a global fact the validator's clean
   re-derivation cannot confirm: compilation must fail in "global-opt".
   The same program must compile and validate cleanly without the bug. *)

let mutation_programs : (int * string * Ast.program) list =
  [
    ( 1,
      "and-mask",
      (* bugged: x & 7 in [0,6], so x == 7 is "provably false" *)
      prog
        [ set "x" (ld8 (g "gA") &: i 7);
          if_ (v "x" =: i 7) [ st8 (g "gA") (i 1) ] [ st8 (g "gA") (i 2) ];
          ret (v "x") ] );
    ( 2,
      "refine-flip",
      (* bugged: the then-refinement of x < 10 yields x in [10, 63], so the
         inner x >= 10 flips from provably-false to provably-true *)
      prog
        [ set "x" (ld8 (g "gA") &: i 63);
          if_ (v "x" <: i 10)
            [ if_ (v "x" >=: i 10)
                [ st8 (g "gA") (i 1) ]
                [ st8 (g "gA") (i 2) ] ]
            [];
          ret (v "x") ] );
    ( 3,
      "sep-overlap",
      (* bugged: the computed store into gA is "disjoint" from gA[0], so the
         second load is a redundant-load-elimination hit *)
      prog
        [ set "a" (ld8 (g "gA"));
          st8 (g "gA" +: ((ld8 (g "gB") &: i 7) <<: i 3)) (i 7);
          set "b" (ld8 (g "gA"));
          ret (v "a" +: v "b") ] );
    ( 4,
      "add-wrap",
      (* bugged: x in [max-1, max] plus 2 wraps to a negative interval, so
         the inner y < 0 becomes "provably true" *)
      prog
        [ set "x" (ld8 (g "gA"));
          if_ (v "x" >: i64 (Int64.sub Int64.max_int 2L))
            [ set "y" (v "x" +: i 2);
              if_ (v "y" <: i 0) [ st8 (g "gA") (i 1) ] [ st8 (g "gA") (i 2) ] ]
            [];
          ret (v "x") ] );
    ( 5,
      "cmp-flip",
      (* bugged: x < 8 decides with swapped operands, flipping the provable
         direction from true to false *)
      prog
        [ set "x" (ld8 (g "gA") &: i 7);
          if_ (v "x" <: i 8) [ st8 (g "gA") (i 1) ] [ st8 (g "gA") (i 2) ];
          ret (v "x") ] );
  ]

let test_mutation (bug, name, p) () =
  (match Driver.compile ~validate:true Driver.compiled p with
  | _ -> ()
  | exception Driver.Verify_failed (stage, _) ->
    Alcotest.failf "%s: clean pipeline refuted in %s" name stage);
  match Driver.compile ~validate:true ~absint_bug:bug Driver.compiled p with
  | _ -> Alcotest.failf "%s: seeded analysis bug %d not refuted" name bug
  | exception Driver.Verify_failed (stage, _) ->
    Alcotest.(check string)
      (name ^ " refuted by the global-opt validator")
      "global-opt" stage

let test_bug_modes_distinct () =
  Alcotest.(check int) "mutation suite covers every bug mode"
    Absint.num_bugs
    (List.length (List.sort_uniq compare (List.map (fun (b, _, _) -> b) mutation_programs)))

(* -- idempotence of the extended pipeline ------------------------------ *)

(* One round of [local opt -> analyze -> global passes -> local cleanup]
   from the driver's front end must reach a fixpoint: re-running the whole
   round leaves every function byte-identical.  (The driver applies exactly
   one round; this pins down that one round is enough.) *)

let fingerprint (cfg : Cfg.program) =
  String.concat "\n"
    (List.map (fun f -> Format.asprintf "%a" Cfg.pp_func f) cfg.Cfg.funcs)

let global_round (cfg : Cfg.program) =
  let t = Absint.analyze cfg in
  List.iter
    (fun (f : Cfg.func) -> ignore (Opt.run_global (Absint.facts t f.Cfg.name) f))
    cfg.Cfg.funcs;
  Opt.run_program cfg

let test_idempotent name () =
  let b = Registry.find name in
  let cfg = Driver.front_end Driver.compiled b.Registry.program in
  global_round cfg;
  let fp1 = fingerprint cfg in
  global_round cfg;
  Alcotest.(check bool)
    (name ^ ": second global round is a no-op")
    true
    (String.equal fp1 (fingerprint cfg))

(* -- driver payoff ----------------------------------------------------- *)

let test_driver_hits () =
  let b = Registry.find "ct" in
  let _, gs = Driver.compile_stats Driver.compiled b.Registry.program in
  Alcotest.(check bool) "ct has global-optimization hits" true
    (gs.Driver.gs_consts + gs.Driver.gs_branches + gs.Driver.gs_rles
     + gs.Driver.gs_dses + gs.Driver.gs_relaxed
    > 0);
  let _, gs0 =
    Driver.compile_stats ~global_opt:false Driver.compiled b.Registry.program
  in
  Alcotest.(check bool) "ablation reports zero hits" true
    (gs0 = Driver.zero_gstats)

let () =
  Alcotest.run "absint"
    [
      ( "facts",
        [
          Alcotest.test_case "constant branch direction" `Quick test_const_branch;
          Alcotest.test_case "loop exit range" `Quick test_loop_exit_range;
          Alcotest.test_case "subword load range" `Quick test_subword_load_range;
          Alcotest.test_case "mask range" `Quick test_mask_range;
          Alcotest.test_case "separation oracle" `Quick test_separation;
          Alcotest.test_case "diagnostics" `Quick test_diags;
          Alcotest.test_case "load-load relaxation accepted" `Quick
            test_load_load_relax;
          Alcotest.test_case "nan constant in relaxed block" `Quick
            test_nan_relax;
        ] );
      ( "mutations",
        Alcotest.test_case "bug modes all covered" `Quick test_bug_modes_distinct
        :: List.map
             (fun ((_, name, _) as m) ->
               Alcotest.test_case ("seeded bug: " ^ name) `Quick (test_mutation m))
             mutation_programs );
      ( "fixpoint",
        List.map
          (fun name ->
            Alcotest.test_case ("idempotent: " ^ name) `Quick (test_idempotent name))
          [ "ct"; "vadd"; "fft"; "8b10b" ] );
      ( "driver",
        [ Alcotest.test_case "global hits and ablation" `Quick test_driver_hits ] );
    ]
