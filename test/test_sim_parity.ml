(* Golden-parity suite for the optimized cycle simulator.

   The optimized [Core] must reproduce the seed simulator's statistics
   bit-for-bit: the rewrite is a performance refactor, not a model change.
   Two layers of defense:

   - golden: every workload's (cycles, blocks, branch_mispredicts,
     callret_mispredicts, dcache_misses, load_flushes) must equal the
     committed fixture [Sim_golden.per_workload], recorded from the seed.
   - differential: on a few workloads, run [Core] and the frozen
     [Core_ref] side by side and compare the *complete* timing record
     plus the operand-network profile, catching drift in fields the
     fixture does not pin.

   The specialized engine ([Specialize], compile-on-first-use) runs the
   same two layers: every golden workload bit-identical to the fixture,
   and the full-record differential against [Core_ref] — its contract is
   equality on every statistic, not just the pinned six.

   The default run checks a fast subset (a few seconds); set
   TRIPS_PARITY_FULL=1 to sweep all registered workloads (the CI battery
   does). *)

module Registry = Trips_workloads.Registry
module Platforms = Trips_harness.Platforms
module Image = Trips_tir.Image
module Exec = Trips_edge.Exec
module Core = Trips_sim.Core
module Core_ref = Trips_sim.Core_ref
module Specialize = Trips_sim.Specialize
module Checkpoint = Trips_sim.Checkpoint
module Sampled = Trips_sim.Sampled

let full = Sys.getenv_opt "TRIPS_PARITY_FULL" <> None

(* Small, fast workloads that still cover the interesting stat columns:
   dcache misses (ct, pktflow), branch mispredicts (a2time, tblook),
   call/ret mispredicts (8b10b, vortex), float code (fft, wupwise). *)
let fast_subset =
  [ "ct"; "conv"; "vadd"; "basefp"; "fft"; "aifftr"; "tblook"; "a2time";
    "pktflow"; "wupwise"; "8b10b"; "vortex" ]

let golden_rows () =
  if full then Sim_golden.per_workload
  else
    List.filter
      (fun (name, _, _, _, _, _, _) -> List.mem name fast_subset)
      Sim_golden.per_workload

let compiled name =
  let b = Registry.find name in
  let prog = Platforms.edge_program Platforms.C b in
  let image = Image.build b.Registry.program.Trips_tir.Ast.globals in
  (prog, image)

let check_golden_with run (name, cycles, blocks, bm, cm, dm, lf) () =
  let prog, image = compiled name in
  let r : Core.result = run prog image ~entry:"main" ~args:[] in
  let t = r.Core.timing in
  Alcotest.(check int) "cycles" cycles t.Core.cycles;
  Alcotest.(check int) "blocks" blocks t.Core.blocks;
  Alcotest.(check int) "branch_mispredicts" bm t.Core.branch_mispredicts;
  Alcotest.(check int) "callret_mispredicts" cm t.Core.callret_mispredicts;
  Alcotest.(check int) "dcache_misses" dm t.Core.dcache_misses;
  Alcotest.(check int) "load_flushes" lf t.Core.load_flushes

let check_golden = check_golden_with (fun p i ~entry ~args -> Core.run p i ~entry ~args)

let check_golden_spec =
  check_golden_with (fun p i ~entry ~args ->
      Specialize.run ~threshold:0 p i ~entry ~args)

(* Field-by-field comparison against the frozen reference simulator.
   Each run gets a fresh image: execution mutates program memory. *)
let check_differential_with run name () =
  let b = Registry.find name in
  let prog = Platforms.edge_program Platforms.C b in
  let fresh_image () = Image.build b.Registry.program.Trips_tir.Ast.globals in
  let o : Core.result = run prog (fresh_image ()) ~entry:"main" ~args:[] in
  let r = Core_ref.run prog (fresh_image ()) ~entry:"main" ~args:[] in
  let ot = o.Core.timing and rt = r.Core_ref.timing in
  let ck what a b = Alcotest.(check int) what a b in
  ck "cycles" rt.Core_ref.cycles ot.Core.cycles;
  ck "blocks" rt.Core_ref.blocks ot.Core.blocks;
  ck "branch_mispredicts" rt.Core_ref.branch_mispredicts ot.Core.branch_mispredicts;
  ck "callret_mispredicts" rt.Core_ref.callret_mispredicts
    ot.Core.callret_mispredicts;
  ck "load_flushes" rt.Core_ref.load_flushes ot.Core.load_flushes;
  ck "icache_misses" rt.Core_ref.icache_misses ot.Core.icache_misses;
  ck "dcache_misses" rt.Core_ref.dcache_misses ot.Core.dcache_misses;
  ck "l2_misses" rt.Core_ref.l2_misses ot.Core.l2_misses;
  ck "peak_occupancy" rt.Core_ref.peak_occupancy ot.Core.peak_occupancy;
  ck "l1d_bytes" rt.Core_ref.l1d_bytes ot.Core.l1d_bytes;
  ck "l2_bytes" rt.Core_ref.l2_bytes ot.Core.l2_bytes;
  ck "dram_bytes" rt.Core_ref.dram_bytes ot.Core.dram_bytes;
  Alcotest.(check (float 1e-9)) "occupancy_weighted"
    rt.Core_ref.occupancy_weighted ot.Core.occupancy_weighted;
  Alcotest.(check (float 1e-9)) "occupancy_useful" rt.Core_ref.occupancy_useful
    ot.Core.occupancy_useful;
  let op = o.Core.opn and rp = r.Core_ref.opn in
  ck "opn_packets" rp.Trips_noc.Opn.total_packets op.Trips_noc.Opn.total_packets;
  ck "opn_hops" rp.Trips_noc.Opn.total_hops op.Trips_noc.Opn.total_hops;
  ck "opn_contention" rp.Trips_noc.Opn.contention_cycles
    op.Trips_noc.Opn.contention_cycles;
  (* per-block profiles must agree label by label *)
  let obs =
    List.map (fun (l, (b : Core.block_obs)) ->
        (l, b.Core.bo_instances, b.Core.bo_latency, b.Core.bo_residency))
  in
  let robs =
    List.map (fun (l, (b : Core_ref.block_obs)) ->
        ( l, b.Core_ref.bo_instances, b.Core_ref.bo_latency,
          b.Core_ref.bo_residency ))
  in
  Alcotest.(check bool) "block_profile" true
    (obs o.Core.block_profile = robs r.Core_ref.block_profile)

let check_differential =
  check_differential_with (fun p i ~entry ~args -> Core.run p i ~entry ~args)

(* threshold 0 compiles every block; the default threshold also exercises
   the interpreted-to-compiled switch mid-run *)
let check_differential_spec name () =
  check_differential_with
    (fun p i ~entry ~args -> Specialize.run ~threshold:0 p i ~entry ~args)
    name ();
  check_differential_with
    (fun p i ~entry ~args -> Specialize.run p i ~entry ~args)
    name ()

(* Checkpoint contract: architectural replay of the tail is exact (same
   return value, block counts adding up to the full run), and resuming
   the same checkpoint twice is deterministic.  Timing at the seam is
   approximate by design, so cycle counts are not compared against the
   full run. *)
let check_checkpoint name () =
  let b = Registry.find name in
  let prog = Platforms.edge_program Platforms.C b in
  let fresh_image () = Image.build b.Registry.program.Trips_tir.Ast.globals in
  let full = Core.run prog (fresh_image ()) ~entry:"main" ~args:[] in
  let total = full.Core.exec.Exec.blocks in
  let after = total / 2 in
  (match Checkpoint.capture ~after prog (fresh_image ()) ~entry:"main" ~args:[] with
  | None -> Alcotest.fail "program finished before the checkpoint"
  | Some ck ->
    Alcotest.(check bool) "captured at or after the target" true
      (ck.Checkpoint.ck_blocks >= after);
    let tail = Checkpoint.resume ck prog in
    Alcotest.(check bool) "same return value" true
      (tail.Core.ret = full.Core.ret);
    (* functional statistics continue from the snapshot, so the resumed
       run ends with the full run's block count *)
    Alcotest.(check int) "blocks add up" total tail.Core.exec.Exec.blocks;
    let tail2 = Checkpoint.resume ck prog in
    Alcotest.(check int) "deterministic resume" tail.Core.timing.Core.cycles
      tail2.Core.timing.Core.cycles);
  (* a capture point past the end of the run is reported, not invented *)
  match
    Checkpoint.capture ~after:(total + 1) prog (fresh_image ()) ~entry:"main"
      ~args:[]
  with
  | None -> ()
  | Some _ -> Alcotest.fail "checkpoint past the end of the program"

(* Sampled contract: execution stays exact (return value, block count);
   the cycle estimate either is exact (full-detail fallback) or carries
   the true count within its own 95% interval on these workloads. *)
let check_sampled name () =
  let b = Registry.find name in
  let prog = Platforms.edge_program Platforms.C b in
  let fresh_image () = Image.build b.Registry.program.Trips_tir.Ast.globals in
  let full = Core.run prog (fresh_image ()) ~entry:"main" ~args:[] in
  let detailed, est =
    Sampled.run prog (fresh_image ()) ~entry:"main" ~args:[]
  in
  Alcotest.(check bool) "same return value" true
    (detailed.Core.ret = full.Core.ret);
  Alcotest.(check int) "exact block count" full.Core.exec.Exec.blocks
    est.Sampled.es_total_blocks;
  let actual = float_of_int full.Core.timing.Core.cycles in
  if est.Sampled.es_full then
    Alcotest.(check (float 0.5)) "exact cycles on full fallback" actual
      est.Sampled.es_cycles
  else
    Alcotest.(check bool) "true cycles within the reported CI" true
      (Float.abs (est.Sampled.es_cycles -. actual) <= est.Sampled.es_ci95)

let () =
  Alcotest.run "sim_parity"
    [
      ( "golden",
        List.map
          (fun ((name, _, _, _, _, _, _) as row) ->
            Alcotest.test_case name `Quick (check_golden row))
          (golden_rows ()) );
      ( "differential",
        List.map
          (fun name -> Alcotest.test_case name `Quick (check_differential name))
          [ "fft"; "basefp"; "pktflow"; "vortex" ] );
      ( "golden_specialized",
        List.map
          (fun ((name, _, _, _, _, _, _) as row) ->
            Alcotest.test_case name `Quick (check_golden_spec row))
          (golden_rows ()) );
      ( "differential_specialized",
        List.map
          (fun name ->
            Alcotest.test_case name `Quick (check_differential_spec name))
          [ "fft"; "basefp"; "pktflow"; "vortex"; "a2time"; "8b10b" ] );
      ( "checkpoint",
        List.map
          (fun name -> Alcotest.test_case name `Quick (check_checkpoint name))
          [ "fft"; "a2time"; "vortex" ] );
      ( "sampled",
        List.map
          (fun name -> Alcotest.test_case name `Quick (check_sampled name))
          [ "fft"; "ct"; "tblook" ] );
    ]
