(* Tests for the TIR layer: lowering, both interpreters, optimizer passes and
   source transforms.  The central property is differential: every pipeline
   (AST interp, CFG interp, optimized CFG interp, transformed program) must
   compute the same result and leave the same memory image. *)

open Trips_tir
open Ast.Infix

let value = Alcotest.testable Ty.pp_value ( = )

(* -- sample programs ------------------------------------------------- *)

let prog_sum_to_n =
  Ast.program
    [
      Ast.func "main" ~params:[ ("n", Ty.I64) ] ~ret:Ty.I64
        [
          set "acc" (i 0);
          for_ "k" (i 1) (v "n" +: i 1) [ set "acc" (v "acc" +: v "k") ];
          ret (v "acc");
        ];
    ]

let prog_fib =
  Ast.program
    [
      Ast.func "fib" ~params:[ ("n", Ty.I64) ] ~ret:Ty.I64
        [
          if_ (v "n" <: i 2) [ ret (v "n") ] [];
          ret (call "fib" [ v "n" -: i 1 ] +: call "fib" [ v "n" -: i 2 ]);
        ];
      Ast.func "main" ~params:[ ("n", Ty.I64) ] ~ret:Ty.I64 [ ret (call "fib" [ v "n" ]) ];
    ]

let prog_memory =
  Ast.program
    ~globals:[ Ast.global "arr" (64 * 8) ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          for_ "k" (i 0) (i 64) [ st8 (g "arr" +: (v "k" <<: i 3)) (v "k" *: v "k") ];
          set "acc" (i 0);
          for_ "k" (i 0) (i 64) [ set "acc" (v "acc" +: ld8 (g "arr" +: (v "k" <<: i 3))) ];
          ret (v "acc");
        ];
    ]

let prog_float =
  Ast.program
    [
      Ast.func "main" ~params:[ ("n", Ty.I64) ] ~ret:Ty.F64
        [
          set "s" (f 0.0);
          for_ "k" (i 1) (v "n") [ set "s" (v "s" +.: (f 1.0 /.: Un (Ast.Itof, v "k"))) ];
          ret (v "s");
        ];
    ]

let prog_control =
  Ast.program
    [
      Ast.func "main" ~params:[ ("n", Ty.I64) ] ~ret:Ty.I64
        [
          set "odd" (i 0);
          set "even" (i 0);
          for_ "k" (i 0) (v "n")
            [
              if_ (v "k" &: i 1)
                [ set "odd" (v "odd" +: v "k") ]
                [ set "even" (v "even" +: (v "k" *: i 3)) ];
            ];
          ret ((v "odd" <<: i 20) ^: v "even");
        ];
    ]

let prog_subword =
  Ast.program
    ~globals:[ Ast.global "buf" 256 ]
    [
      Ast.func "main" ~ret:Ty.I64
        [
          for_ "k" (i 0) (i 256) [ st1 (g "buf" +: v "k") (v "k" *: i 7) ];
          set "acc" (i 0);
          for_ "k" (i 0) (i 128)
            [ set "acc" (v "acc" +: ld2 (g "buf" +: (v "k" <<: i 1))) ];
          ret (v "acc");
        ];
    ]

let all_programs =
  [
    ("sum", prog_sum_to_n, [ Ty.Vi 100L ]);
    ("fib", prog_fib, [ Ty.Vi 12L ]);
    ("memory", prog_memory, []);
    ("float", prog_float, [ Ty.Vi 50L ]);
    ("control", prog_control, [ Ty.Vi 200L ]);
    ("subword", prog_subword, []);
  ]

let run_ast p args =
  let image = Image.build p.Ast.globals in
  let out = Interp.run_ast p image "main" args in
  (out.result, Image.checksum image)

let run_cfg ?(optimize = false) p args =
  let image = Image.build p.Ast.globals in
  let cfg = Lower.program p in
  if optimize then Opt.run_program cfg;
  let out = Interp.run_cfg cfg image "main" args in
  (out.result, Image.checksum image)

(* -- unit tests ------------------------------------------------------ *)

let test_sum_value () =
  let r, _ = run_ast prog_sum_to_n [ Ty.Vi 100L ] in
  Alcotest.(check (option value)) "gauss" (Some (Ty.Vi 5050L)) r

let test_fib_value () =
  let r, _ = run_ast prog_fib [ Ty.Vi 12L ] in
  Alcotest.(check (option value)) "fib 12" (Some (Ty.Vi 144L)) r

let test_memory_value () =
  let r, _ = run_ast prog_memory [] in
  (* sum of k^2 for k in 0..63 = 85344 *)
  Alcotest.(check (option value)) "sum squares" (Some (Ty.Vi 85344L)) r

let test_lower_matches_ast () =
  List.iter
    (fun (tag, p, args) ->
      let ra, ca = run_ast p args in
      let rc, cc = run_cfg p args in
      Alcotest.(check (option value)) (tag ^ " result") ra rc;
      Alcotest.(check int64) (tag ^ " memory") ca cc)
    all_programs

let test_opt_preserves () =
  List.iter
    (fun (tag, p, args) ->
      let ra, ca = run_cfg p args in
      let rc, cc = run_cfg ~optimize:true p args in
      Alcotest.(check (option value)) (tag ^ " result") ra rc;
      Alcotest.(check int64) (tag ^ " memory") ca cc)
    all_programs

let test_opt_reduces_work () =
  (* optimization should not increase the dynamic op count *)
  let p = prog_control in
  let image1 = Image.build p.Ast.globals in
  let cfg1 = Lower.program p in
  let base = (Interp.run_cfg cfg1 image1 "main" [ Ty.Vi 200L ]).counts in
  let image2 = Image.build p.Ast.globals in
  let cfg2 = Lower.program p in
  Opt.run_program cfg2;
  let opt = (Interp.run_cfg cfg2 image2 "main" [ Ty.Vi 200L ]).counts in
  Alcotest.(check bool) "ops not increased" true (opt.Interp.ops <= base.Interp.ops)

let test_unroll_preserves () =
  List.iter
    (fun (tag, p, args) ->
      let ra, ca = run_ast p args in
      List.iter
        (fun factor ->
          let p' = Transform.unroll_program ~factor p in
          let ru, cu = run_ast p' args in
          Alcotest.(check (option value)) (Printf.sprintf "%s x%d result" tag factor) ra ru;
          Alcotest.(check int64) (Printf.sprintf "%s x%d memory" tag factor) ca cu)
        [ 2; 3; 4; 8 ])
    all_programs

let test_unroll_remainder () =
  (* trip counts not divisible by the factor must still be exact *)
  List.iter
    (fun n ->
      let args = [ Ty.Vi (Int64.of_int n) ] in
      let r0, _ = run_ast prog_sum_to_n args in
      let p' = Transform.unroll_program ~factor:4 prog_sum_to_n in
      let r1, _ = run_ast p' args in
      Alcotest.(check (option value)) (Printf.sprintf "n=%d" n) r0 r1)
    [ 0; 1; 2; 3; 4; 5; 7; 8; 9; 31 ]

let test_reassociate_int_exact () =
  (* integer reductions are exactly associative: the transform must
     preserve the value for any trip count *)
  List.iter
    (fun n ->
      let args = [ Ty.Vi (Int64.of_int n) ] in
      let r0, _ = run_ast prog_sum_to_n args in
      let p' =
        { prog_sum_to_n with Ast.funcs = List.map Transform.reassociate prog_sum_to_n.Ast.funcs }
      in
      let r1, _ = run_ast p' args in
      Alcotest.(check (option value)) (Printf.sprintf "n=%d" n) r0 r1)
    [ 0; 1; 2; 3; 4; 5; 7; 8; 9; 100 ]

let test_reassociate_splits_accumulators () =
  let p' = Transform.reassociate (Ast.find_func prog_sum_to_n "main") in
  let rec stmt_vars acc (s : Ast.stmt) =
    match s with
    | Ast.Let (x, _) -> x :: acc
    | Ast.For (_, _, _, _, b) -> List.fold_left stmt_vars acc b
    | Ast.If (_, t, e) -> List.fold_left stmt_vars (List.fold_left stmt_vars acc t) e
    | Ast.While (_, b) -> List.fold_left stmt_vars acc b
    | _ -> acc
  in
  let vars = List.fold_left stmt_vars [] p'.Ast.body in
  let partials = List.filter (fun v -> String.length v > 4 && String.sub v (String.length v - 5) 5 |> fun s -> String.length s = 5 && s.[0] = '$') vars in
  Alcotest.(check bool) "partial accumulators introduced" true (List.length partials >= 3)

let test_inline_preserves () =
  let p =
    Ast.program
      [
        Ast.func "sq" ~params:[ ("x", Ty.I64) ] ~ret:Ty.I64 [ ret (v "x" *: v "x") ];
        Ast.func "main" ~params:[ ("n", Ty.I64) ] ~ret:Ty.I64
          [
            set "acc" (i 0);
            for_ "k" (i 0) (v "n") [ set "acc" (v "acc" +: call "sq" [ v "k" ]) ];
            ret (v "acc");
          ];
      ]
  in
  let args = [ Ty.Vi 20L ] in
  let r0, _ = run_ast p args in
  let p' = Transform.inline p in
  let r1, _ = run_ast p' args in
  Alcotest.(check (option value)) "inline preserves" r0 r1;
  (* the inlined main must no longer call sq *)
  let main = Ast.find_func p' "main" in
  let rec expr_calls (e : Ast.expr) =
    match e with
    | Ast.Call ("sq", _) -> true
    | Ast.Bin (_, a, b) -> expr_calls a || expr_calls b
    | Ast.Un (_, a) | Ast.Load (_, _, a) -> expr_calls a
    | Ast.Call (_, args) -> List.exists expr_calls args
    | _ -> false
  in
  let rec stmt_calls (s : Ast.stmt) =
    match s with
    | Ast.Let (_, e) | Ast.Expr e -> expr_calls e
    | Ast.Return (Some e) -> expr_calls e
    | Ast.Return None -> false
    | Ast.Store (_, a, b) -> expr_calls a || expr_calls b
    | Ast.If (c, t, e) -> expr_calls c || List.exists stmt_calls t || List.exists stmt_calls e
    | Ast.While (c, b) -> expr_calls c || List.exists stmt_calls b
    | Ast.For (_, lo, hi, _, b) -> expr_calls lo || expr_calls hi || List.exists stmt_calls b
  in
  Alcotest.(check bool) "no call left" false (List.exists stmt_calls main.Ast.body)

let test_image_layout () =
  let globals = [ Ast.global "a" 10; Ast.global "b" ~align:64 8 ] in
  let img = Image.build globals in
  let a = Image.addr_of img "a" and b = Image.addr_of img "b" in
  Alcotest.(check bool) "disjoint" true (b >= a + 10);
  Alcotest.(check int) "aligned" 0 (b mod 64)

let test_image_init () =
  let init = [| (Ty.W4, 0x11223344L); (Ty.W1, 0x7FL) |] in
  let img = Image.build [ Ast.global "g" ~init 8 ] in
  let base = Image.addr_of img "g" in
  Alcotest.(check int64) "word" 0x11223344L (Image.load_u img Ty.W4 base);
  Alcotest.(check int64) "byte" 0x7FL (Image.load_u img Ty.W1 (base + 4))

let test_image_subword_load () =
  let img = Image.build [ Ast.global "g" 8 ] in
  let base = Image.addr_of img "g" in
  Image.store img Ty.W1 base (Ty.Vi 0xFFL);
  (* narrow integer loads zero-extend, like PowerPC lbz *)
  Alcotest.(check value) "zero-extended load" (Ty.Vi 0xFFL) (Image.load img Ty.I64 Ty.W1 base);
  Alcotest.(check int64) "raw" 0xFFL (Image.load_u img Ty.W1 base);
  Alcotest.(check value) "explicit sext" (Ty.Vi (-1L))
    (Semantics.unop (Ast.Sext Ty.W1) (Image.load img Ty.I64 Ty.W1 base))

let test_image_bounds () =
  let img = Image.build [] in
  Alcotest.check_raises "oob"
    (Semantics.Trap (Printf.sprintf "memory access out of range: 0x%x (8 bytes)" (Image.size img)))
    (fun () -> ignore (Image.load img Ty.I64 Ty.W8 (Image.size img)));
  (* a huge address from wrapped pointer arithmetic must trap, not
     overflow the addr+bytes bound and crash in Bytes.set *)
  Alcotest.check_raises "oob wrap"
    (Semantics.Trap
       (Printf.sprintf "memory access out of range: 0x%x (8 bytes)" (max_int - 3)))
    (fun () -> Image.store img Ty.W8 (max_int - 3) (Ty.Vi 0L))

let test_trap_div0 () =
  let p =
    Ast.program
      [ Ast.func "main" ~params:[ ("n", Ty.I64) ] ~ret:Ty.I64 [ ret (i 1 /: v "n") ] ]
  in
  let image = Image.build [] in
  Alcotest.check_raises "div0" (Semantics.Trap "integer division by zero") (fun () ->
      ignore (Interp.run_ast p image "main" [ Ty.Vi 0L ]))

let test_fuel () =
  let p = Ast.program [ Ast.func "main" ~ret:Ty.I64 [ while_ (i 1) [ set "x" (i 0) ]; ret (i 0) ] ] in
  let image = Image.build [] in
  Alcotest.check_raises "fuel" Interp.Out_of_fuel (fun () ->
      ignore (Interp.run_ast ~fuel:1000 p image "main" []))

(* -- property tests --------------------------------------------------- *)

(* Random straight-line integer programs: check AST/CFG/optimized-CFG all
   agree. *)
let gen_program =
  let open QCheck.Gen in
  let var_names = [| "a"; "b"; "c"; "d" |] in
  let gen_expr depth_seed =
    (* build a small expression tree over bound vars and constants *)
    let rec go depth st =
      if depth = 0 then
        (match int_bound 2 st with
        | 0 -> Ast.Int (Int64.of_int (int_range (-100) 100 st))
        | _ -> Ast.Var var_names.(int_bound 3 st))
      else
        let op =
          match int_bound 8 st with
          | 0 -> Ast.Add | 1 -> Ast.Sub | 2 -> Ast.Mul | 3 -> Ast.And
          | 4 -> Ast.Or | 5 -> Ast.Xor | 6 -> Ast.Lt | 7 -> Ast.Ge | _ -> Ast.Ne
        in
        Ast.Bin (op, go (depth - 1) st, go (depth - 1) st)
    in
    go depth_seed
  in
  let gen_stmt st =
    let x = var_names.(int_bound 3 st) in
    Ast.Let (x, gen_expr (1 + int_bound 2 st) st)
  in
  let gen st =
    let n = 1 + int_bound 12 st in
    let body = List.init n (fun _ -> gen_stmt st) in
    let final = Ast.Return (Some (gen_expr 2 st)) in
    Ast.program
      [
        Ast.func "main"
          ~params:[ ("a", Ty.I64); ("b", Ty.I64); ("c", Ty.I64); ("d", Ty.I64) ]
          ~ret:Ty.I64 (body @ [ final ]);
      ]
  in
  gen

let prop_pipelines_agree =
  QCheck.Test.make ~name:"AST/CFG/opt pipelines agree on random programs" ~count:300
    (QCheck.make gen_program) (fun p ->
      let args = [ Ty.Vi 3L; Ty.Vi (-7L); Ty.Vi 12L; Ty.Vi 100L ] in
      let ra, _ = run_ast p args in
      let rc, _ = run_cfg p args in
      let ro, _ = run_cfg ~optimize:true p args in
      ra = rc && rc = ro)

let prop_opt_idempotent =
  QCheck.Test.make ~name:"optimizer is idempotent on random programs" ~count:100
    (QCheck.make gen_program) (fun p ->
      let cfg = Lower.program p in
      Opt.run_program cfg;
      let printed1 = Format.asprintf "%a" Cfg.pp_program cfg in
      Opt.run_program cfg;
      let printed2 = Format.asprintf "%a" Cfg.pp_program cfg in
      printed1 = printed2)

let () =
  Alcotest.run "tir"
    [
      ( "interp",
        [
          Alcotest.test_case "sum value" `Quick test_sum_value;
          Alcotest.test_case "fib value" `Quick test_fib_value;
          Alcotest.test_case "memory value" `Quick test_memory_value;
          Alcotest.test_case "trap div0" `Quick test_trap_div0;
          Alcotest.test_case "fuel limit" `Quick test_fuel;
        ] );
      ( "lower",
        [ Alcotest.test_case "CFG matches AST on all samples" `Quick test_lower_matches_ast ] );
      ( "opt",
        [
          Alcotest.test_case "preserves semantics" `Quick test_opt_preserves;
          Alcotest.test_case "reduces dynamic work" `Quick test_opt_reduces_work;
          QCheck_alcotest.to_alcotest prop_pipelines_agree;
          QCheck_alcotest.to_alcotest prop_opt_idempotent;
        ] );
      ( "transform",
        [
          Alcotest.test_case "unroll preserves" `Quick test_unroll_preserves;
          Alcotest.test_case "unroll remainder exact" `Quick test_unroll_remainder;
          Alcotest.test_case "reassociate int exact" `Quick test_reassociate_int_exact;
          Alcotest.test_case "reassociate splits accumulators" `Quick test_reassociate_splits_accumulators;
          Alcotest.test_case "inline preserves" `Quick test_inline_preserves;
        ] );
      ( "image",
        [
          Alcotest.test_case "layout" `Quick test_image_layout;
          Alcotest.test_case "init" `Quick test_image_init;
          Alcotest.test_case "sub-word zero extension" `Quick test_image_subword_load;
          Alcotest.test_case "bounds" `Quick test_image_bounds;
        ] );
    ]
