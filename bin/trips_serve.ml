(* The trips_serve daemon: the experiment engine behind an HTTP front
   door.

     trips_serve                                  -- 127.0.0.1:8123
     trips_serve --port 0 --workers 8             -- ephemeral port
     trips_serve --cache-dir _results/cache       -- persistent results

   Stops cleanly on SIGINT/SIGTERM: admission closes (new work answers
   503), admitted jobs drain, then the process exits. *)

open Cmdliner
module Server = Trips_serve.Server

let serve host port workers queue_capacity cache_dir conn_timeout_s verbose =
  let cfg =
    {
      Server.host;
      port;
      workers;
      queue_capacity;
      cache_dir;
      conn_timeout_s;
      verbose;
    }
  in
  (* Mask the stop signals BEFORE spawning any thread or domain: every
     thread inherits the mask, so delivery parks on [Thread.wait_signal]
     below instead of racing a handler against threads blocked in C
     calls (select, pthread_cond_wait) that never reach a safepoint. *)
  ignore (Thread.sigmask Unix.SIG_BLOCK [ Sys.sigint; Sys.sigterm ]);
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match Server.start cfg with
  | exception Unix.Unix_error (e, fn, arg) ->
    `Error
      (false, Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))
  | exception Invalid_argument msg -> `Error (false, msg)
  | t ->
    Printf.printf "trips_serve: listening on %s:%d (%d workers, queue %d%s)\n%!"
      host (Server.port t) workers queue_capacity
      (match cache_dir with
      | Some d -> ", cache " ^ d
      | None -> ", no cache");
    let (_ : int) = Thread.wait_signal [ Sys.sigint; Sys.sigterm ] in
    Server.request_stop t;
    prerr_endline "trips_serve: draining...";
    Server.stop t;
    let s = Server.pool_stats t in
    Printf.eprintf
      "trips_serve: stopped (%d submitted, %d executed, %d cache hits, %d \
       coalesced, %d shed)\n"
      s.Trips_engine.Pool.submitted s.Trips_engine.Pool.executed
      s.Trips_engine.Pool.cache_hits s.Trips_engine.Pool.coalesced
      s.Trips_engine.Pool.shed;
    `Ok ()

let () =
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port =
    Arg.(
      value & opt int 8123
      & info [ "port"; "p" ] ~docv:"PORT"
          ~doc:"TCP port; 0 picks an ephemeral port.")
  in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers"; "j" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:"Admission queue bound; beyond it requests are shed (429).")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"On-disk result cache shared with trips_run.")
  in
  let timeout =
    Arg.(
      value & opt float 30.
      & info [ "conn-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-connection receive/send timeout.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Access log on stderr.")
  in
  let doc = "TRIPS simulation-as-a-service daemon" in
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "trips_serve" ~doc)
          Term.(
            ret
              (const serve $ host $ port $ workers $ queue $ cache_dir
             $ timeout $ verbose))))
