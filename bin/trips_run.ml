(* Command-line driver for the TRIPS reproduction.

     trips_run --all --jobs 4 --out _results          -- engine sweep
     trips_run --id table1 --id fig9 --format json    -- selected experiments
     trips_run --all --cache-dir _results/cache       -- cached re-run
     trips_run list                         -- registered benchmarks
     trips_run run fft --preset H --sim cycle
     trips_run exp fig9                     -- one table/figure
     trips_run disasm conv --preset C       -- EDGE block listing *)

open Cmdliner
module Registry = Trips_workloads.Registry
module Image = Trips_tir.Image
module Ast = Trips_tir.Ast
module Ty = Trips_tir.Ty
module Exec = Trips_edge.Exec
module Core = Trips_sim.Core
module Specialize = Trips_sim.Specialize
module Sampled = Trips_sim.Sampled
module Plan_cache = Trips_sim.Plan_cache
open Trips_harness

let quality_of = function
  | "C" | "c" -> Platforms.C
  | "H" | "h" -> Platforms.H
  | q -> invalid_arg ("unknown preset " ^ q ^ " (use C or H)")

(* -- list ------------------------------------------------------------ *)

let list_cmd =
  let doc = "List the registered benchmarks." in
  let run () =
    let t =
      Trips_util.Table.create
        [ ("name", Trips_util.Table.Left); ("suite", Trips_util.Table.Left);
          ("simple", Trips_util.Table.Left); ("description", Trips_util.Table.Left) ]
    in
    List.iter
      (fun (b : Registry.bench) ->
        Trips_util.Table.add_row t
          [ b.Registry.name; Registry.suite_name b.Registry.suite;
            (if b.Registry.simple then "yes" else "");
            b.Registry.description ])
      Registry.all;
    Trips_util.Table.print t
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* -- run -------------------------------------------------------------- *)

let bench_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH")

let preset_arg =
  Arg.(value & opt string "C" & info [ "preset" ] ~docv:"C|H" ~doc:"Code quality.")

let sim_arg =
  Arg.(
    value
    & opt string "cycle"
    & info [ "sim" ] ~docv:"SIM"
        ~doc:
          "One of: functional, cycle, spec, sampled, ideal, risc, core2, p4, \
           p3.")

let plan_cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "plan-cache" ] ~docv:"DIR"
        ~doc:
          "On-disk compiled-plan cache directory for the specialized engine \
           (sim spec/sampled).")

let run_bench name preset sim plan_cache =
  let b = Registry.find name in
  let q = quality_of preset in
  let golden, _ = Registry.golden b in
  let show_ret v =
    Printf.printf "result: %s (golden: %s)\n"
      (match v with Some v -> Ty.value_to_string v | None -> "-")
      (match golden with Some v -> Ty.value_to_string v | None -> "-")
  in
  match sim with
  | "functional" ->
    let s = Platforms.edge_stats q b in
    show_ret golden;
    Printf.printf "blocks: %d  fetched: %d  executed: %d  useful: %d  moves: %d\n"
      s.Exec.blocks s.Exec.fetched s.Exec.executed s.Exec.useful s.Exec.k_move;
    Printf.printf "avg block size: %.1f\n"
      (Trips_util.Stats.ratio s.Exec.fetched s.Exec.blocks)
  | "cycle" | "spec" ->
    let r, rep =
      if sim = "cycle" then (Platforms.trips q b, None)
      else begin
        let prog = Platforms.edge_program q b in
        let image = Image.build b.Registry.program.Ast.globals in
        let cache = Option.map (fun dir -> Plan_cache.create ~dir ()) plan_cache in
        let r, rep = Specialize.run_report ?cache prog image ~entry:"main" ~args:[] in
        (r, Some rep)
      end
    in
    show_ret r.Core.ret;
    Printf.printf
      "cycles: %d  IPC: %.2f (useful %.2f)  window: %.0f  avg hops: %.2f\n"
      r.Core.timing.Core.cycles (Core.ipc r) (Core.useful_ipc r) (Core.avg_window r)
      r.Core.opn_average_hops;
    Printf.printf
      "branch mispredicts: %d  call/ret: %d  I$ misses: %d  D$ misses: %d  load flushes: %d\n"
      r.Core.timing.Core.branch_mispredicts r.Core.timing.Core.callret_mispredicts
      r.Core.timing.Core.icache_misses r.Core.timing.Core.dcache_misses
      r.Core.timing.Core.load_flushes;
    Option.iter
      (fun (rep : Specialize.report) ->
        Printf.printf
          "spec: compiled=%d derived=%d cache_hits_mem=%d cache_hits_disk=%d \
           interpreted=%d\n"
          rep.Specialize.rp_blocks_compiled rep.Specialize.rp_tables_derived
          rep.Specialize.rp_cache_hits_mem rep.Specialize.rp_cache_hits_disk
          rep.Specialize.rp_interpreted)
      rep
  | "sampled" ->
    let prog = Platforms.edge_program q b in
    let image = Image.build b.Registry.program.Ast.globals in
    let cache = Option.map (fun dir -> Plan_cache.create ~dir ()) plan_cache in
    let r, est = Sampled.run ?cache prog image ~entry:"main" ~args:[] in
    show_ret r.Core.ret;
    if est.Sampled.es_full then
      Printf.printf "cycles: %.0f (exact: run too short to sample)\n"
        est.Sampled.es_cycles
    else
      Printf.printf
        "cycles: %.0f +/- %.0f (95%% CI)  intervals: %d  measured %d of %d \
         blocks  cpb %.2f +/- %.3f\n"
        est.Sampled.es_cycles est.Sampled.es_ci95 est.Sampled.es_intervals
        est.Sampled.es_measured_blocks est.Sampled.es_total_blocks
        est.Sampled.es_cpb_mean est.Sampled.es_cpb_stddev
  | "ideal" ->
    let r = Platforms.ideal Trips_limit.Ideal.trips_window ~tag:"1k" q b in
    show_ret r.Trips_limit.Ideal.ret;
    Printf.printf "cycles: %d  IPC: %.2f\n" r.Trips_limit.Ideal.cycles
      (Trips_limit.Ideal.ipc r)
  | "risc" ->
    let s = Platforms.risc b in
    Printf.printf
      "executed: %d  loads: %d  stores: %d  branches: %d  reg reads: %d  reg writes: %d\n"
      s.Trips_risc.Exec.executed s.Trips_risc.Exec.loads s.Trips_risc.Exec.stores
      s.Trips_risc.Exec.branches s.Trips_risc.Exec.reg_reads s.Trips_risc.Exec.reg_writes
  | "core2" | "p4" | "p3" ->
    let cfg =
      match sim with
      | "core2" -> Trips_superscalar.Ooo.core2
      | "p4" -> Trips_superscalar.Ooo.pentium4
      | _ -> Trips_superscalar.Ooo.pentium3
    in
    let r = Platforms.super cfg ~icc:false b in
    Printf.printf "%s cycles: %d  IPC: %.2f  branch mispredicts: %d\n"
      cfg.Trips_superscalar.Ooo.name r.Trips_superscalar.Ooo.stats.Trips_superscalar.Ooo.cycles
      (Trips_superscalar.Ooo.ipc r)
      r.Trips_superscalar.Ooo.stats.Trips_superscalar.Ooo.branch_mispredicts
  | s -> invalid_arg ("unknown simulator " ^ s)

let run_cmd =
  let doc = "Run one benchmark on one modeled platform." in
  let main name preset sim plan_cache =
    try
      run_bench name preset sim plan_cache;
      `Ok ()
    with
    | Invalid_argument msg | Sys_error msg | Failure msg -> `Error (false, msg)
    | Not_found -> `Error (false, "unknown benchmark (see `trips_run list`)")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret (const main $ bench_arg $ preset_arg $ sim_arg $ plan_cache_arg))

(* -- exp -------------------------------------------------------------- *)

let exp_cmd =
  let doc = "Regenerate one of the paper's tables/figures (see `bench/main.exe`)." in
  let id_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let run id =
    let e = Experiments.find id in
    Printf.printf "%s — paper: %s\n\n" e.Experiments.title e.Experiments.paper_claim;
    Trips_util.Table.print (e.Experiments.run ())
  in
  Cmd.v (Cmd.info "exp" ~doc) Term.(const run $ id_arg)

(* -- disasm ----------------------------------------------------------- *)

let disasm_cmd =
  let doc = "Print the compiled EDGE blocks of a benchmark." in
  let run name preset =
    let b = Registry.find name in
    let prog = Platforms.edge_program (quality_of preset) b in
    Format.printf "%a@." Trips_edge.Block.pp_program prog
  in
  Cmd.v (Cmd.info "disasm" ~doc) Term.(const run $ bench_arg $ preset_arg)

(* -- lint ------------------------------------------------------------- *)

module Analyzer = Trips_analysis.Analyzer
module Diag = Trips_analysis.Diag
module Driver = Trips_compiler.Driver
module Json = Trips_util.Json

let lint_preset_of = function
  | "O0" | "o0" -> Driver.o0
  | "C" | "c" | "compiled" -> Driver.compiled
  | "H" | "h" | "hand" -> Driver.hand
  | "BB" | "bb" | "basic-blocks" -> Driver.basic_blocks
  | q -> invalid_arg ("unknown preset " ^ q ^ " (use O0, C, H or basic-blocks)")

let lint_program (preset : Driver.preset) (b : Registry.bench) :
    Trips_edge.Block.program option * Diag.t list =
  (* H lints what the experiments execute: the hand-written EDGE program
     when the benchmark ships one *)
  match
    match (preset.Driver.pname, b.Registry.hand_edge) with
    | "hand", Some prog -> Ok prog
    | _ -> ( try Ok (Driver.compile preset b.Registry.program) with e -> Error e)
  with
  | Ok prog -> (Some prog, Analyzer.analyze_program prog)
  | Error e ->
    ( None,
      [
        Diag.make ~pass:"driver" ~fname:b.Registry.name "compile-fail"
          (Printf.sprintf "compilation failed: %s" (Printexc.to_string e));
      ] )

(* Shared exit policy for the analysis subcommands: error-level findings
   always fail the run; [--strict] also fails on warnings.  Used with
   [--out] so CI can both archive the JSON report and gate on it. *)
let strict_exit ~what ~strict ds =
  if Diag.failed ~strict ds then
    `Error
      ( false,
        Printf.sprintf "%s failed%s: %s" what
          (if strict then " (strict)" else "")
          (Analyzer.summary ds) )
  else `Ok ()

let lint_main benches all presets format strict out =
  try
    let benches =
      if all || benches = [] then Registry.all
      else List.map Registry.find benches
    in
    let presets = (if presets = [] then [ "C"; "H" ] else presets) in
    let presets = List.map (fun p -> (p, lint_preset_of p)) presets in
    let results =
      List.concat_map
        (fun (b : Registry.bench) ->
          List.map
            (fun (ptag, preset) ->
              let _, ds = lint_program preset b in
              (b.Registry.name, ptag, ds))
            presets)
        benches
    in
    let all_ds = List.concat_map (fun (_, _, ds) -> ds) results in
    let dirty =
      List.filter (fun (_, _, ds) -> ds <> []) results
    in
    let report_json =
      Json.Obj
        [
          ( "programs",
            Json.List
              (List.map
                 (fun (name, ptag, ds) ->
                   Json.Obj
                     [
                       ("bench", Json.Str name);
                       ("preset", Json.Str ptag);
                       ("findings", Diag.list_to_json ds);
                     ])
                 results) );
          ( "summary",
            Json.Obj
              [
                ("programs", Json.Int (List.length results));
                ("errors", Json.Int (Diag.errors all_ds));
                ("warnings", Json.Int (Diag.warnings all_ds));
                ("strict", Json.Bool strict);
              ] );
        ]
    in
    (match format with
    | "txt" ->
      List.iter
        (fun (name, ptag, ds) ->
          Printf.printf "%s [%s]: %s\n" name ptag (Analyzer.summary ds);
          print_string (Diag.render_text ds))
        dirty;
      Printf.printf "lint: %d program(s) (%d benchmark(s) x %d preset(s)): %s\n"
        (List.length results) (List.length benches) (List.length presets)
        (Analyzer.summary all_ds)
    | "json" -> print_string (Json.to_string report_json)
    | f -> invalid_arg ("unknown format " ^ f ^ " (txt|json)"));
    (match out with
    | Some file ->
      let oc = open_out file in
      output_string oc (Json.to_string report_json);
      close_out oc;
      Printf.eprintf "lint report: %s\n" file
    | None -> ());
    strict_exit ~what:"lint" ~strict all_ds
  with
  | Invalid_argument msg | Sys_error msg | Failure msg -> `Error (false, msg)
  | Not_found -> `Error (false, "unknown benchmark (see `trips_run list`)")

let lint_cmd =
  let doc =
    "Statically analyze the compiled EDGE blocks of registered benchmarks."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compiles every selected benchmark under every selected preset and \
         runs the block/program static analyzer: predicate-path checks \
         (exactly one exit, store completion, write delivery, port \
         conflicts, null-token flow), dataflow deadlock and dead-code \
         detection, and cross-block liveness (use-before-def, dead \
         writes, branch-target resolution).";
    ]
  in
  let benches =
    Arg.(
      value
      & opt_all string []
      & info [ "bench" ] ~docv:"NAME" ~doc:"Benchmark to lint (repeatable).")
  in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Lint every registered benchmark.")
  in
  let presets =
    Arg.(
      value
      & opt_all string []
      & info [ "preset" ] ~docv:"O0|C|H|BB"
          ~doc:"Code-quality preset (repeatable; default C and H).")
  in
  let format =
    Arg.(
      value & opt string "txt"
      & info [ "format" ] ~docv:"txt|json" ~doc:"Report rendering.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Fail on warnings as well as errors.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also write the JSON report to $(docv).")
  in
  Cmd.v
    (Cmd.info "lint" ~doc ~man)
    Term.(
      ret (const lint_main $ benches $ all $ presets $ format $ strict $ out))

(* -- absint ----------------------------------------------------------- *)

let absint_refutations ptag (b : Registry.bench) =
  (* Full translation validation (memoized alongside the transval sweep);
     with the global passes on, every applied fact and LSID relaxation is
     re-derived and replayed by the validator. *)
  let reports =
    Platforms.memo
      (Printf.sprintf "transval/%s/%s" ptag b.Registry.name)
      (fun () -> fst (Driver.validate (Absint_xv.preset_of ptag) b.Registry.program))
  in
  let s = Trips_analysis.Transval.summarize reports in
  s.Trips_analysis.Transval.n_refuted

let absint_main benches all presets validate format strict out =
  try
    let benches =
      if all || benches = [] then Registry.all
      else List.map Registry.find benches
    in
    let presets = if presets = [] then [ "C"; "H" ] else presets in
    List.iter (fun p -> ignore (Absint_xv.preset_of p)) presets;
    let results =
      List.concat_map
        (fun (b : Registry.bench) ->
          List.map
            (fun ptag ->
              let r = Absint_xv.row ptag b in
              let ds = Absint_xv.diags_of ptag b in
              let refuted =
                if validate then Some (absint_refutations ptag b) else None
              in
              (b, ptag, r, ds, refuted))
            presets)
        benches
    in
    let all_ds = List.concat_map (fun (_, _, _, ds, _) -> ds) results in
    let refute_ds =
      List.filter_map
        (fun ((b : Registry.bench), ptag, _, _, refuted) ->
          match refuted with
          | Some n when n > 0 ->
            Some
              (Diag.make ~pass:"transval" ~fname:b.Registry.name "refuted"
                 (Printf.sprintf "%s [%s]: %d refuted validation report(s)"
                    b.Registry.name ptag n))
          | _ -> None)
        results
    in
    let total_hits =
      List.fold_left
        (fun acc (_, _, (r : Absint_xv.row), _, _) ->
          acc + Absint_xv.total_hits r.Absint_xv.a_gs)
        0 results
    in
    let total_refuted =
      List.fold_left
        (fun acc (_, _, _, _, refuted) ->
          acc + Option.value refuted ~default:0)
        0 results
    in
    let report_json =
      Json.Obj
        [
          ( "programs",
            Json.List
              (List.map
                 (fun ((b : Registry.bench), ptag, (r : Absint_xv.row), ds, refuted) ->
                   let s = r.Absint_xv.a_stats in
                   let gs = r.Absint_xv.a_gs in
                   Json.Obj
                     ([
                        ("bench", Json.Str b.Registry.name);
                        ("preset", Json.Str ptag);
                        ( "facts",
                          Json.Obj
                            [
                              ("const_defs", Json.Int s.Trips_analysis.Absint.s_const_defs);
                              ("dead_branches", Json.Int s.Trips_analysis.Absint.s_dead_branches);
                              ("sep_pairs", Json.Int s.Trips_analysis.Absint.s_sep_pairs);
                              ("widenings", Json.Int s.Trips_analysis.Absint.s_widenings);
                            ] );
                        ( "hits",
                          Json.Obj
                            [
                              ("consts", Json.Int gs.Driver.gs_consts);
                              ("branches", Json.Int gs.Driver.gs_branches);
                              ("rles", Json.Int gs.Driver.gs_rles);
                              ("dses", Json.Int gs.Driver.gs_dses);
                              ("relaxed", Json.Int gs.Driver.gs_relaxed);
                              ("total", Json.Int (Absint_xv.total_hits gs));
                            ] );
                        ("findings", Diag.list_to_json ds);
                      ]
                     @
                     match refuted with
                     | Some n -> [ ("refuted", Json.Int n) ]
                     | None -> []))
                 results) );
          ( "summary",
            Json.Obj
              [
                ("programs", Json.Int (List.length results));
                ("total_hits", Json.Int total_hits);
                ("errors", Json.Int (Diag.errors all_ds));
                ("warnings", Json.Int (Diag.warnings all_ds));
                ("validated", Json.Bool validate);
                ("refuted", Json.Int total_refuted);
                ("strict", Json.Bool strict);
              ] );
        ]
    in
    (match format with
    | "txt" ->
      List.iter
        (fun ((b : Registry.bench), ptag, (r : Absint_xv.row), ds, refuted) ->
          let s = r.Absint_xv.a_stats in
          let gs = r.Absint_xv.a_gs in
          Printf.printf
            "%s [%s]: %d const def(s), %d dead branch(es), %d sep pair(s); \
             hits %d (%d/%d/%d/%d/%d)%s\n"
            b.Registry.name ptag s.Trips_analysis.Absint.s_const_defs
            s.Trips_analysis.Absint.s_dead_branches
            s.Trips_analysis.Absint.s_sep_pairs
            (Absint_xv.total_hits gs) gs.Driver.gs_consts gs.Driver.gs_branches
            gs.Driver.gs_rles gs.Driver.gs_dses gs.Driver.gs_relaxed
            (match refuted with
            | Some n -> Printf.sprintf "; refuted %d" n
            | None -> "");
          print_string (Diag.render_text ds))
        results;
      Printf.printf "absint: %d program(s): %d global hit(s)%s, %s\n"
        (List.length results) total_hits
        (if validate then Printf.sprintf ", %d refuted" total_refuted else "")
        (Analyzer.summary all_ds)
    | "json" -> print_string (Json.to_string report_json)
    | f -> invalid_arg ("unknown format " ^ f ^ " (txt|json)"));
    (match out with
    | Some file ->
      let oc = open_out file in
      output_string oc (Json.to_string report_json);
      close_out oc;
      Printf.eprintf "absint report: %s\n" file
    | None -> ());
    strict_exit ~what:"absint" ~strict (refute_ds @ all_ds)
  with
  | Invalid_argument msg | Sys_error msg | Failure msg -> `Error (false, msg)
  | Not_found -> `Error (false, "unknown benchmark (see `trips_run list`)")

let absint_cmd =
  let doc =
    "Run the global abstract interpretation and report derived facts, \
     discharged optimizations, and findings."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the whole-program abstract interpretation (value ranges, \
         known bits, nullness, global alias partition) over each selected \
         benchmark's optimized TIR, reports the facts it derives and the \
         global-optimization hits the driver applied (constant/branch \
         folding, redundant-load and dead-store elimination, LSID-ordering \
         relaxation), plus its diagnostics: provably dead branches, \
         guaranteed division traps, out-of-range shifts, and the \
         must-not-alias pair count.  With $(b,--validate) the full \
         translation validator additionally re-derives and replays every \
         applied fact, and any refutation fails the run.";
    ]
  in
  let benches =
    Arg.(
      value
      & opt_all string []
      & info [ "bench" ] ~docv:"NAME" ~doc:"Benchmark to analyze (repeatable).")
  in
  let all =
    Arg.(
      value & flag & info [ "all" ] ~doc:"Analyze every registered benchmark.")
  in
  let presets =
    Arg.(
      value
      & opt_all string []
      & info [ "preset" ] ~docv:"O0|C|H|BB"
          ~doc:"Code-quality preset (repeatable; default C and H).")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Also run the translation validator and fail on any refutation.")
  in
  let format =
    Arg.(
      value & opt string "txt"
      & info [ "format" ] ~docv:"txt|json" ~doc:"Report rendering.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Fail on warnings as well as errors.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also write the JSON report to $(docv).")
  in
  Cmd.v
    (Cmd.info "absint" ~doc ~man)
    Term.(
      ret
        (const absint_main $ benches $ all $ presets $ validate $ format
       $ strict $ out))

(* -- timing ----------------------------------------------------------- *)

module Timing = Trips_analysis.Timing

let timing_main benches all simple preset format top xval strict out =
  try
    let q = quality_of preset in
    let benches =
      if all then Registry.all
      else if simple then Registry.simple_suite
      else if benches = [] then Registry.simple_suite
      else List.map Registry.find benches
    in
    let model = Timing_xv.model_of Core.prototype in
    let per_bench =
      List.map
        (fun (b : Registry.bench) ->
          let p = Timing_xv.predict q b in
          let measured =
            if xval then
              Some (Platforms.trips q b).Core.timing.Core.cycles
            else None
          in
          (b, p, measured))
        benches
    in
    let top_blocks (p : Timing_xv.prediction) =
      let items =
        Hashtbl.fold
          (fun label (s : Timing.summary) acc ->
            let count =
              Option.value ~default:0 (Hashtbl.find_opt p.Timing_xv.pr_counts label)
            in
            (* rank by dynamic contribution; never-executed blocks last *)
            ((count * Timing.predicted_block_cost model s, s.Timing.s_crit), label, count, s)
            :: acc)
          p.Timing_xv.pr_summaries []
      in
      let sorted =
        List.sort (fun (w1, _, _, _) (w2, _, _, _) -> compare w2 w1) items
      in
      List.filteri (fun i _ -> i < top) sorted
      |> List.map (fun (_, label, count, s) -> (label, count, s))
    in
    let block_json (label, count, (s : Timing.summary)) =
      let bk = s.Timing.s_breakdown in
      Json.Obj
        [
          ("label", Json.Str label);
          ("instances", Json.Int count);
          ("insts", Json.Int s.Timing.s_n);
          ("crit", Json.Int s.Timing.s_crit);
          ( "breakdown",
            Json.Obj
              [
                ("compute", Json.Int bk.Timing.bk_compute);
                ("route", Json.Int bk.Timing.bk_route);
                ("memory", Json.Int bk.Timing.bk_memory);
                ("overhead", Json.Int bk.Timing.bk_overhead);
              ] );
          ("pred_depth", Json.Int s.Timing.s_pred_depth);
          ("link_max", Json.Int s.Timing.s_link_max);
          ("contention_est", Json.Int s.Timing.s_contention_est);
        ]
    in
    let err_pct pred = function
      | Some m when m <> 0 ->
        Some (100. *. float_of_int (pred - m) /. float_of_int m)
      | _ -> None
    in
    let report_json =
      let programs =
        List.map
          (fun ((b : Registry.bench), (p : Timing_xv.prediction), measured) ->
            Json.Obj
              ([
                 ("bench", Json.Str b.Registry.name);
                 ("preset", Json.Str (Platforms.quality_tag q));
                 ("predicted_cycles", Json.Int p.Timing_xv.pr_cycles);
               ]
              @ (match measured with
                | Some m ->
                  [ ("measured_cycles", Json.Int m) ]
                  @
                  (match err_pct p.Timing_xv.pr_cycles measured with
                  | Some e -> [ ("error_pct", Json.Float e) ]
                  | None -> [])
                | None -> [])
              @ [
                  ("blocks", Json.Int p.Timing_xv.pr_blocks);
                  ("mispredicts", Json.Int p.Timing_xv.pr_mispredicts);
                  ("top_blocks", Json.List (List.map block_json (top_blocks p)));
                  ("findings", Diag.list_to_json p.Timing_xv.pr_diags);
                ]))
          per_bench
      in
      let all_ds =
        List.concat_map (fun (_, p, _) -> p.Timing_xv.pr_diags) per_bench
      in
      let xv_summary =
        if xval then begin
          let pairs =
            List.filter_map
              (fun (_, (p : Timing_xv.prediction), m) ->
                Option.map
                  (fun m -> (float_of_int p.Timing_xv.pr_cycles, float_of_int m))
                  m)
              per_bench
          in
          let predicted = List.map fst pairs and actual = List.map snd pairs in
          [
            ("pearson", Json.Float (Trips_util.Stats.pearson predicted actual));
            ("mape", Json.Float (Trips_util.Stats.mape ~predicted ~actual));
          ]
        end
        else []
      in
      Json.Obj
        [
          ("programs", Json.List programs);
          ( "summary",
            Json.Obj
              ([
                 ("programs", Json.Int (List.length per_bench));
                 ("warnings", Json.Int (Diag.warnings all_ds));
               ]
              @ xv_summary) );
        ]
    in
    (match format with
    | "txt" ->
      List.iter
        (fun ((b : Registry.bench), (p : Timing_xv.prediction), measured) ->
          Printf.printf "%s [%s]: predicted %d cycles" b.Registry.name
            (Platforms.quality_tag q) p.Timing_xv.pr_cycles;
          (match measured with
          | Some m ->
            Printf.printf " (measured %d" m;
            (match err_pct p.Timing_xv.pr_cycles measured with
            | Some e -> Printf.printf ", %+.1f%%" e
            | None -> ());
            print_string ")"
          | None -> ());
          Printf.printf ", %d block instance(s), %d mispredict(s)\n"
            p.Timing_xv.pr_blocks p.Timing_xv.pr_mispredicts;
          let t =
            Trips_util.Table.create
              [
                ("block", Trips_util.Table.Left);
                ("instances", Trips_util.Table.Right);
                ("insts", Trips_util.Table.Right);
                ("crit", Trips_util.Table.Right);
                ("compute", Trips_util.Table.Right);
                ("route", Trips_util.Table.Right);
                ("memory", Trips_util.Table.Right);
                ("overhead", Trips_util.Table.Right);
                ("pred", Trips_util.Table.Right);
                ("link", Trips_util.Table.Right);
              ]
          in
          List.iter
            (fun (label, count, (s : Timing.summary)) ->
              let bk = s.Timing.s_breakdown in
              Trips_util.Table.add_row t
                [
                  label;
                  string_of_int count;
                  string_of_int s.Timing.s_n;
                  string_of_int s.Timing.s_crit;
                  string_of_int bk.Timing.bk_compute;
                  string_of_int bk.Timing.bk_route;
                  string_of_int bk.Timing.bk_memory;
                  string_of_int bk.Timing.bk_overhead;
                  string_of_int s.Timing.s_pred_depth;
                  string_of_int s.Timing.s_link_max;
                ])
            (top_blocks p);
          Trips_util.Table.print t;
          print_string (Diag.render_text p.Timing_xv.pr_diags);
          print_newline ())
        per_bench;
      if xval then begin
        let pairs =
          List.filter_map
            (fun (_, (p : Timing_xv.prediction), m) ->
              Option.map
                (fun m -> (float_of_int p.Timing_xv.pr_cycles, float_of_int m))
                m)
            per_bench
        in
        let predicted = List.map fst pairs and actual = List.map snd pairs in
        Printf.printf "cross-validation: %d program(s), pearson %.3f, mape %.1f%%\n"
          (List.length pairs)
          (Trips_util.Stats.pearson predicted actual)
          (Trips_util.Stats.mape ~predicted ~actual)
      end
    | "json" -> print_string (Json.to_string report_json)
    | f -> invalid_arg ("unknown format " ^ f ^ " (txt|json)"));
    (match out with
    | Some file ->
      let oc = open_out file in
      output_string oc (Json.to_string report_json);
      close_out oc;
      Printf.eprintf "timing report: %s\n" file
    | None -> ());
    strict_exit ~what:"timing" ~strict
      (List.concat_map (fun (_, p, _) -> p.Timing_xv.pr_diags) per_bench)
  with
  | Invalid_argument msg | Sys_error msg | Failure msg -> `Error (false, msg)
  | Not_found -> `Error (false, "unknown benchmark (see `trips_run list`)")

let timing_cmd =
  let doc =
    "Statically predict block and program cycle counts from the schedule."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the static critical-path timing analyzer over the compiled \
         EDGE blocks of the selected benchmarks: per-block weighted \
         critical path with a compute/route/memory/overhead breakdown, \
         placement-quality findings (long operand routes on the critical \
         path, ET hotspots, over-serialized predicate chains, register \
         round-trips), and a whole-program cycle prediction obtained by \
         composing the per-block summaries over the functional \
         execution's block trace with the next-block predictor replayed.";
      `P
        "With $(b,--xval) the cycle-level simulator also runs and the \
         report gains measured cycles, per-benchmark error and \
         Pearson/MAPE aggregates.";
    ]
  in
  let benches =
    Arg.(
      value
      & opt_all string []
      & info [ "bench" ] ~docv:"NAME" ~doc:"Benchmark to analyze (repeatable).")
  in
  let all =
    Arg.(
      value & flag & info [ "all" ] ~doc:"Analyze every registered benchmark.")
  in
  let simple =
    Arg.(
      value & flag
      & info [ "simple" ] ~doc:"Analyze the paper's Simple suite (default).")
  in
  let preset =
    Arg.(
      value & opt string "C"
      & info [ "preset" ] ~docv:"C|H" ~doc:"Code quality.")
  in
  let format =
    Arg.(
      value & opt string "txt"
      & info [ "format" ] ~docv:"txt|json" ~doc:"Report rendering.")
  in
  let top =
    Arg.(
      value & opt int 3
      & info [ "top" ] ~docv:"N"
          ~doc:"Blocks to detail per benchmark, hottest first.")
  in
  let xval =
    Arg.(
      value & flag
      & info [ "xval" ]
          ~doc:"Cross-validate: also run the cycle-level simulator.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Fail (non-zero exit) when placement findings are reported.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also write the JSON report to $(docv).")
  in
  Cmd.v
    (Cmd.info "timing" ~doc ~man)
    Term.(
      ret
        (const timing_main $ benches $ all $ simple $ preset $ format $ top
        $ xval $ strict $ out))

(* -- sampling --------------------------------------------------------- *)

let sampling_main benches all preset format out =
  try
    let q = quality_of preset in
    let benches =
      if all || benches = [] then Registry.all
      else List.map Registry.find benches
    in
    let rs = Sampling_xv.rows ~quality:q benches in
    let within = Sampling_xv.within_of rs in
    let mean_err = Sampling_xv.mean_abs_error_of rs in
    let row_json (r : Sampling_xv.row) =
      Json.Obj
        [
          ("bench", Json.Str r.Sampling_xv.sx_bench);
          ("actual", Json.Int r.Sampling_xv.sx_actual);
          ("estimate", Json.Float r.Sampling_xv.sx_estimate);
          ("ci95", Json.Float r.Sampling_xv.sx_ci95);
          ("error_pct", Json.Float r.Sampling_xv.sx_error_pct);
          ("intervals", Json.Int r.Sampling_xv.sx_intervals);
          ("full", Json.Bool r.Sampling_xv.sx_full);
          ("within_ci", Json.Bool r.Sampling_xv.sx_within);
        ]
    in
    let report_json =
      Json.Obj
        [
          ("preset", Json.Str (Platforms.quality_tag q));
          ("rows", Json.List (List.map row_json rs));
          ( "summary",
            Json.Obj
              [
                ("workloads", Json.Int (List.length rs));
                ("within_ci", Json.Int within);
                ("mean_abs_error_pct", Json.Float mean_err);
              ] );
        ]
    in
    (match format with
    | "txt" ->
      Trips_util.Table.print (Sampling_xv.table_of rs);
      Printf.printf
        "sampling accuracy: %d program(s), %d within CI, mean |error| %.2f%%\n"
        (List.length rs) within mean_err
    | "json" -> print_string (Json.to_string report_json)
    | f -> invalid_arg ("unknown format " ^ f ^ " (txt|json)"));
    (match out with
    | Some file ->
      let oc = open_out file in
      output_string oc (Json.to_string report_json);
      close_out oc;
      Printf.eprintf "sampling report: %s\n" file
    | None -> ());
    `Ok ()
  with
  | Invalid_argument msg | Sys_error msg | Failure msg -> `Error (false, msg)
  | Not_found -> `Error (false, "unknown benchmark (see `trips_run list`)")

let sampling_cmd =
  let doc = "Cross-validate the sampled simulator's cycle estimates." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs every selected benchmark twice: once under the full \
         detailed cycle simulator and once under the sampled simulator \
         (exact execution, systematically sampled timing), then compares \
         the sampled estimate and its 95% confidence interval with the \
         exact cycle count.  The summary reports how many workloads fall \
         inside their own interval and the mean absolute error.";
    ]
  in
  let benches =
    Arg.(
      value
      & opt_all string []
      & info [ "bench" ] ~docv:"NAME" ~doc:"Benchmark to check (repeatable).")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Check every registered benchmark (default).")
  in
  let preset =
    Arg.(
      value & opt string "C"
      & info [ "preset" ] ~docv:"C|H" ~doc:"Code quality.")
  in
  let format =
    Arg.(
      value & opt string "txt"
      & info [ "format" ] ~docv:"txt|json" ~doc:"Report rendering.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also write the JSON report to $(docv).")
  in
  Cmd.v
    (Cmd.info "sampling" ~doc ~man)
    Term.(
      ret (const sampling_main $ benches $ all $ preset $ format $ out))

(* -- transval --------------------------------------------------------- *)

module Transval = Trips_analysis.Transval

let transval_main benches all presets isa format strict out =
  try
    let full = Sys.getenv_opt "TRIPS_TRANSVAL_FULL" = Some "1" in
    let benches =
      if all || benches = [] then Registry.all else List.map Registry.find benches
    in
    let edge_presets =
      if full then Transval_xv.all_presets
      else
        List.concat_map
          (fun p ->
            match p with
            | "fast" -> [ Transval_xv.O0; Transval_xv.C ]
            | p -> (
              match Transval_xv.tag_of_string p with
              | Some t -> [ t ]
              | None ->
                invalid_arg
                  ("unknown preset " ^ p ^ " (use O0, C, H, BB or fast)")))
          (if presets = [] then [ "fast" ] else presets)
    in
    let edge, risc =
      if full then (true, true)
      else
        match isa with
        | "edge" -> (true, false)
        | "risc" -> (false, true)
        | "both" -> (true, true)
        | s -> invalid_arg ("unknown isa " ^ s ^ " (edge|risc|both)")
    in
    let cells =
      Transval_xv.sweep
        ~presets:(if edge then edge_presets else [])
        ~risc benches
    in
    let cell_json (c : Transval_xv.cell) =
      let s = c.Transval_xv.c_summary in
      Json.Obj
        [
          ("bench", Json.Str c.Transval_xv.c_bench);
          ("config", Json.Str c.Transval_xv.c_config);
          ("proved", Json.Int s.Transval.n_proved);
          ("concrete", Json.Int s.Transval.n_concrete);
          ("refuted", Json.Int s.Transval.n_refuted);
          ( "findings",
            Diag.list_to_json (Transval.report_diags c.Transval_xv.c_reports) );
        ]
    in
    let all_ds =
      List.concat_map
        (fun (c : Transval_xv.cell) ->
          Transval.report_diags c.Transval_xv.c_reports)
        cells
    in
    let totals =
      List.fold_left
        (fun (p, co, r) (c : Transval_xv.cell) ->
          let s = c.Transval_xv.c_summary in
          ( p + s.Transval.n_proved,
            co + s.Transval.n_concrete,
            r + s.Transval.n_refuted ))
        (0, 0, 0) cells
    in
    let tp, tc, tr = totals in
    let report_json =
      Json.Obj
        [
          ("programs", Json.List (List.map cell_json cells));
          ( "summary",
            Json.Obj
              [
                ("programs", Json.Int (List.length cells));
                ("proved", Json.Int tp);
                ("concrete", Json.Int tc);
                ("refuted", Json.Int tr);
                ("warnings", Json.Int (Diag.warnings all_ds));
                ("strict", Json.Bool strict);
              ] );
        ]
    in
    (match format with
    | "txt" ->
      List.iter
        (fun (c : Transval_xv.cell) ->
          let s = c.Transval_xv.c_summary in
          Printf.printf "%s [%s]: proved=%d concrete=%d refuted=%d\n"
            c.Transval_xv.c_bench c.Transval_xv.c_config s.Transval.n_proved
            s.Transval.n_concrete s.Transval.n_refuted;
          print_string
            (Diag.render_text (Transval.report_diags c.Transval_xv.c_reports)))
        cells;
      Printf.printf
        "transval: %d program(s) (%d benchmark(s)): proved=%d concrete=%d \
         refuted=%d\n"
        (List.length cells) (List.length benches) tp tc tr
    | "json" -> print_string (Json.to_string report_json)
    | f -> invalid_arg ("unknown format " ^ f ^ " (txt|json)"));
    (match out with
    | Some file ->
      let oc = open_out file in
      output_string oc (Json.to_string report_json);
      close_out oc;
      Printf.eprintf "transval report: %s\n" file
    | None -> ());
    strict_exit ~what:"transval" ~strict all_ds
  with
  | Invalid_argument msg | Sys_error msg | Failure msg -> `Error (false, msg)
  | Not_found -> `Error (false, "unknown benchmark (see `trips_run list`)")

let transval_cmd =
  let doc =
    "Symbolically validate every compiler pass against its input (translation \
     validation)."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Recompiles the selected benchmarks with per-pass witnesses and checks \
         each pass checkpoint: TIR optimization and block splitting against the \
         lowered CFG, hyperblock formation structurally, register allocation by \
         property, dataflow conversion by symbolic execution of the EDGE block \
         against its TIR region per feasible predicate path, scheduling as \
         array identity, and linking.  With $(b,--isa) risc or both, the RISC \
         backend's emitted code ranges (and prologue) are validated the same \
         way.  Each block reports $(b,proved) (all paths syntactically equal), \
         $(b,concrete) (equal on seeded random concretizations), or \
         $(b,refuted) — a refutation names the guilty pass and first diverging \
         definition.";
      `P
        "Setting TRIPS_TRANSVAL_FULL=1 overrides the preset/isa selection with \
         the full matrix (O0, C, H, BB and both ISAs).";
    ]
  in
  let benches =
    Arg.(
      value
      & opt_all string []
      & info [ "bench" ] ~docv:"NAME" ~doc:"Benchmark to validate (repeatable).")
  in
  let all =
    Arg.(
      value & flag & info [ "all" ] ~doc:"Validate every registered benchmark.")
  in
  let presets =
    Arg.(
      value
      & opt_all string []
      & info [ "preset" ] ~docv:"O0|C|H|BB|fast"
          ~doc:
            "Code-quality preset (repeatable; $(b,fast) = O0 and C; default \
             fast).")
  in
  let isa =
    Arg.(
      value & opt string "both"
      & info [ "isa" ] ~docv:"edge|risc|both" ~doc:"Backend(s) to validate.")
  in
  let format =
    Arg.(
      value & opt string "txt"
      & info [ "format" ] ~docv:"txt|json" ~doc:"Report rendering.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Fail on warnings (path-limit truncations) as well as refutations.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also write the JSON report to $(docv).")
  in
  Cmd.v
    (Cmd.info "transval" ~doc ~man)
    Term.(
      ret
        (const transval_main $ benches $ all $ presets $ isa $ format $ strict
        $ out))

(* -- simbench --------------------------------------------------------- *)

module Core_ref = Trips_sim.Core_ref

(* One sequential cycle-simulator sweep over the registered workloads.
   Compilation and image building happen outside the timed region so the
   clocks measure the selected engine alone (`Core`, `Core_ref`, the
   specialized `Specialize`, or the `Sampled` estimator).  Both wall and
   process CPU time are recorded: the shared machines this runs on carry
   unpredictable background load, so throughput gates use the CPU-time
   ratio, which that noise cancels out of. *)
let simbench_sweep ~use_ref q benches =
  let jobs =
    List.map
      (fun (b : Registry.bench) ->
        let prog = Platforms.edge_program q b in
        (b, prog, Image.build b.Registry.program.Ast.globals))
      benches
  in
  let t0 = Unix.gettimeofday () in
  let c0 = Sys.time () in
  let dbg = Sys.getenv_opt "TRIPS_SIMBENCH_DEBUG" <> None in
  let rows =
    List.map
      (fun ((b : Registry.bench), prog, image) ->
        let w0 = Unix.gettimeofday () and a0 = Gc.allocated_bytes () in
        Fun.protect ~finally:(fun () ->
            if dbg then
              Printf.eprintf "%-24s %8.2fs %10.0f MB\n%!" b.Registry.name
                (Unix.gettimeofday () -. w0)
                ((Gc.allocated_bytes () -. a0) /. 1e6))
        @@ fun () ->
        match use_ref with
        | `Ref ->
          let r = Core_ref.run prog image ~entry:"main" ~args:[] in
          let t = r.Core_ref.timing in
          ( b.Registry.name, t.Core_ref.cycles, t.Core_ref.blocks,
            t.Core_ref.branch_mispredicts, t.Core_ref.callret_mispredicts,
            t.Core_ref.dcache_misses, t.Core_ref.load_flushes )
        | `Core | `Spec ->
          let r =
            if use_ref = `Core then Core.run prog image ~entry:"main" ~args:[]
            else Specialize.run prog image ~entry:"main" ~args:[]
          in
          let t = r.Core.timing in
          ( b.Registry.name, t.Core.cycles, t.Core.blocks,
            t.Core.branch_mispredicts, t.Core.callret_mispredicts,
            t.Core.dcache_misses, t.Core.load_flushes )
        | `Sampled ->
          (* the estimate replaces cycles; the remaining stats cover the
             detailed stretches only, so the row is informational and is
             never compared against the exact engines *)
          let r, est = Sampled.run prog image ~entry:"main" ~args:[] in
          let t = r.Core.timing in
          ( b.Registry.name,
            int_of_float est.Sampled.es_cycles,
            r.Core.exec.Exec.blocks, t.Core.branch_mispredicts,
            t.Core.callret_mispredicts, t.Core.dcache_misses,
            t.Core.load_flushes ))
      jobs
  in
  let wall = Unix.gettimeofday () -. t0 in
  let cpu = Sys.time () -. c0 in
  (rows, wall, cpu)

let simbench_main preset fixture out compare_ref =
  try
    let q = quality_of preset in
    let benches = Registry.all in
    let rows, wall, cpu = simbench_sweep ~use_ref:`Core q benches in
    let blocks = List.fold_left (fun a (_, _, b, _, _, _, _) -> a + b) 0 rows in
    let bps w = if w > 0. then float_of_int blocks /. w else 0. in
    Printf.printf
      "simbench: %d workload(s) [%s], %d block instances, %.2fs wall (%.2fs \
       cpu), %.0f blocks/s\n%!"
      (List.length rows) preset blocks wall cpu (bps cpu);
    let ref_times =
      if compare_ref then begin
        let ref_rows, ref_wall, ref_cpu = simbench_sweep ~use_ref:`Ref q benches in
        if ref_rows <> rows then
          failwith "simbench: optimized and reference simulators disagree";
        Printf.printf
          "simbench: reference sweep %.2fs wall (%.2fs cpu), %.0f blocks/s — \
           speedup x%.2f (stats identical)\n%!"
          ref_wall ref_cpu (bps ref_cpu) (ref_cpu /. cpu);
        Some (ref_wall, ref_cpu)
      end
      else None
    in
    (* specialized engine: must reproduce the interpreter's rows exactly
       (the bit-identity contract), timed for the speedup-vs-plan gate *)
    let spec_rows, spec_wall, spec_cpu = simbench_sweep ~use_ref:`Spec q benches in
    if spec_rows <> rows then
      failwith "simbench: specialized and interpreted engines disagree";
    Printf.printf
      "simbench: specialized sweep %.2fs wall (%.2fs cpu), %.0f blocks/s — \
       speedup x%.2f vs plan interpreter (stats identical)\n%!"
      spec_wall spec_cpu (bps spec_cpu) (cpu /. spec_cpu);
    (* sampled estimator: throughput plus estimate quality *)
    let samp_rows, samp_wall, samp_cpu =
      simbench_sweep ~use_ref:`Sampled q benches
    in
    let samp_err =
      (* mean absolute estimate error vs the exact sweep, in percent *)
      let tot, n =
        List.fold_left2
          (fun (tot, n) (_, est, _, _, _, _, _) (_, cy, _, _, _, _, _) ->
            if cy > 0 then
              (tot +. (abs_float (float_of_int (est - cy)) /. float_of_int cy), n + 1)
            else (tot, n))
          (0., 0) samp_rows rows
      in
      if n = 0 then 0. else 100. *. tot /. float_of_int n
    in
    Printf.printf
      "simbench: sampled sweep %.2fs wall (%.2fs cpu), %.0f blocks/s — \
       speedup x%.2f vs plan interpreter, mean |error| %.2f%%\n%!"
      samp_wall samp_cpu (bps samp_cpu) (cpu /. samp_cpu) samp_err;
    (match fixture with
    | Some file ->
      let oc = open_out file in
      Printf.fprintf oc
        "(* Golden per-workload statistics of the seed (reference) cycle \
         simulator,\n   recorded by `trips_run simbench --preset %s --fixture \
         %s`.\n   Regenerate only if the *model* intentionally changes; the \
         optimized\n   simulator must reproduce these numbers exactly \
         (test_sim_parity.ml). *)\n\nlet preset = %S\n\n\
         (* name, cycles, blocks, branch_mispredicts, callret_mispredicts,\n   \
         dcache_misses, load_flushes *)\n\
         let per_workload = [\n"
        preset file preset;
      List.iter
        (fun (name, cy, bl, bm, cm, dm, lf) ->
          Printf.fprintf oc "  (%S, %d, %d, %d, %d, %d, %d);\n" name cy bl bm cm
            dm lf)
        rows;
      Printf.fprintf oc "]\n";
      close_out oc;
      Printf.eprintf "fixture: %s\n" file
    | None -> ());
    (match out with
    | Some file ->
      let json =
        Json.Obj
          ([
             ("preset", Json.Str preset);
             ("workloads", Json.Int (List.length rows));
             ("blocks", Json.Int blocks);
             ("wall_s", Json.Float wall);
             ("cpu_s", Json.Float cpu);
             ("blocks_per_s", Json.Float (bps cpu));
           ]
          @ (match ref_times with
            | Some (rw, rc) ->
              [
                ("ref_wall_s", Json.Float rw);
                ("ref_cpu_s", Json.Float rc);
                ("ref_blocks_per_s", Json.Float (bps rc));
                ("speedup_vs_ref", Json.Float (rc /. cpu));
              ]
            | None -> [])
          @ [
              ("spec_wall_s", Json.Float spec_wall);
              ("spec_cpu_s", Json.Float spec_cpu);
              ("spec_blocks_per_s", Json.Float (bps spec_cpu));
              ("speedup_vs_plan", Json.Float (cpu /. spec_cpu));
              ("sampled_wall_s", Json.Float samp_wall);
              ("sampled_cpu_s", Json.Float samp_cpu);
              ("sampled_blocks_per_s", Json.Float (bps samp_cpu));
              ("speedup_vs_plan_sampled", Json.Float (cpu /. samp_cpu));
              ("sampled_mean_abs_error_pct", Json.Float samp_err);
            ]
          @ [
              ( "per_workload",
                Json.List
                  (List.map
                     (fun (name, cy, bl, bm, cm, dm, lf) ->
                       Json.Obj
                         [
                           ("name", Json.Str name);
                           ("cycles", Json.Int cy);
                           ("blocks", Json.Int bl);
                           ("branch_mispredicts", Json.Int bm);
                           ("callret_mispredicts", Json.Int cm);
                           ("dcache_misses", Json.Int dm);
                           ("load_flushes", Json.Int lf);
                         ])
                     rows) );
            ])
      in
      let oc = open_out file in
      output_string oc (Json.to_string json);
      close_out oc;
      Printf.eprintf "simbench report: %s\n" file
    | None -> ());
    `Ok ()
  with
  | Invalid_argument msg | Sys_error msg | Failure msg -> `Error (false, msg)

let simbench_cmd =
  let doc =
    "Measure sequential cycle-simulator throughput over the full registry."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compiles every registered workload under the selected preset, then \
         replays them all through the cycle-level simulator, reporting \
         block instances per second.  With $(b,--compare-ref) the frozen \
         pre-optimization simulator (Core_ref) runs the same sweep and the \
         report gains a machine-independent speedup; the two simulators' \
         statistics must agree exactly or the command fails.";
    ]
  in
  let preset =
    Arg.(value & opt string "C" & info [ "preset" ] ~docv:"C|H" ~doc:"Code quality.")
  in
  let fixture =
    Arg.(
      value
      & opt (some string) None
      & info [ "fixture" ] ~docv:"FILE"
          ~doc:"Write the per-workload golden fixture as OCaml source to $(docv).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON report to $(docv).")
  in
  let compare_ref =
    Arg.(
      value & flag
      & info [ "compare-ref" ]
          ~doc:"Also sweep the frozen reference simulator and report speedup.")
  in
  Cmd.v
    (Cmd.info "simbench" ~doc ~man)
    Term.(ret (const simbench_main $ preset $ fixture $ out $ compare_ref))

(* -- serve-client: talk to a running trips_serve daemon --------------- *)

let serve_client_main host port what bench preset mode =
  let module Client = Trips_serve.Client in
  let show = function
    | Result.Error msg -> `Error (false, "request failed: " ^ msg)
    | Result.Ok (resp : Trips_serve.Http.response) ->
      print_endline resp.Trips_serve.Http.r_body;
      if resp.Trips_serve.Http.status = 200 then `Ok ()
      else
        `Error
          ( false,
            Printf.sprintf "server answered %d %s" resp.Trips_serve.Http.status
              (Trips_serve.Http.reason resp.Trips_serve.Http.status) )
  in
  match what with
  | "health" -> show (Client.get ~host ~port "/health")
  | "metrics" -> show (Client.get ~host ~port "/metrics")
  | "verbs" -> show (Client.get ~host ~port "/api/v1/verbs")
  | verb -> (
    match bench with
    | None ->
      `Error (false, "verb '" ^ verb ^ "' needs a BENCH positional argument")
    | Some bench -> (
      match Trips_harness.Service.make ~mode ~verb ~bench ~preset with
      | Result.Error msg -> `Error (false, msg)
      | Result.Ok r ->
        show
          (Client.post_json ~host ~port
             (Trips_serve.Protocol.api_prefix ^ verb)
             (Trips_serve.Protocol.run_request_body r))))

let serve_client_cmd =
  let doc = "Query a running trips_serve daemon." in
  let man =
    [
      `S Manpage.s_examples;
      `P "trips_run serve-client health";
      `P "trips_run serve-client timing fft --preset C --port 8123";
      `P "trips_run serve-client metrics";
    ]
  in
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Daemon address.")
  in
  let port =
    Arg.(
      value & opt int 8123
      & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Daemon port.")
  in
  let what =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WHAT"
          ~doc:
            "One of health, metrics, verbs, or a run verb (compile, lint, \
             timing, simulate, transval).")
  in
  let bench =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark name for run verbs.")
  in
  let preset =
    Arg.(
      value & opt string "C"
      & info [ "preset" ] ~docv:"PRESET" ~doc:"Code-quality preset.")
  in
  let mode =
    Arg.(
      value & opt string ""
      & info [ "mode" ] ~docv:"detail|sampled"
          ~doc:"Simulation engine for the simulate verb.")
  in
  Cmd.v
    (Cmd.info "serve-client" ~doc ~man)
    Term.(
      ret
        (const serve_client_main $ host $ port $ what $ bench $ preset $ mode))

(* -- fuzz ------------------------------------------------------------- *)

module Fuzz_gen = Trips_fuzz.Gen
module Fuzz_oracle = Trips_fuzz.Oracle
module Fuzz_batch = Trips_fuzz.Batch
module Fuzz_corpus = Trips_fuzz.Corpus

let fuzz_main seed count presets max_stmts jobs inject shrink_evals format out
    corpus =
  try
    let count =
      match count with
      | Some n -> n
      | None -> (
        match Sys.getenv_opt "TRIPS_FUZZ_FULL" with
        | Some ("1" | "true" | "yes") -> 5000
        | _ -> 100)
    in
    let presets =
      match presets with
      | [] -> Fuzz_oracle.all_presets
      | ps -> List.map lint_preset_of ps
    in
    let inject =
      Option.map
        (fun s ->
          match Fuzz_oracle.inject_of_string s with
          | Some i -> i
          | None ->
            invalid_arg ("unknown injection " ^ s ^ " (geni-bump|imm-bump|absint-N)"))
        inject
    in
    let oracle = Fuzz_xv.oracle ~presets ?inject () in
    let gen_cfg = { Fuzz_gen.default_cfg with Fuzz_gen.max_stmts } in
    let t =
      Fuzz_batch.run ~workers:jobs ~gen_cfg ~shrink_evals oracle ~seed ~count ()
    in
    let report_json = Fuzz_batch.to_json t in
    (match format with
    | "txt" -> Trips_util.Table.print (Fuzz_batch.table t)
    | "json" -> print_string (Json.to_string report_json)
    | f -> invalid_arg ("unknown format " ^ f ^ " (txt|json)"));
    (match out with
    | Some file ->
      let oc = open_out file in
      output_string oc (Json.to_string report_json);
      close_out oc;
      Printf.eprintf "fuzz report: %s\n" file
    | None -> ());
    (match corpus with
    | Some dir ->
      List.iter
        (fun ((r : Fuzz_batch.row), (f : Fuzz_oracle.failure), sh) ->
          let config = if f.Fuzz_oracle.f_config = "" then "ref" else f.Fuzz_oracle.f_config in
          let entry =
            {
              Fuzz_corpus.e_name =
                Printf.sprintf "s%d-%s-%s" r.Fuzz_batch.b_seed
                  f.Fuzz_oracle.f_check config;
              e_seed = r.Fuzz_batch.b_seed;
              e_check = f.Fuzz_oracle.f_check;
              e_config = f.Fuzz_oracle.f_config;
              e_detail = f.Fuzz_oracle.f_detail;
              e_inject = t.Fuzz_batch.bt_inject;
              e_program = sh.Trips_fuzz.Shrink.sh_program;
            }
          in
          Printf.eprintf "corpus entry: %s\n" (Fuzz_corpus.save dir entry))
        (Fuzz_batch.divergences t)
    | None -> ());
    if t.Fuzz_batch.bt_divergent > 0 then
      `Error
        ( false,
          Printf.sprintf "fuzz: %d divergence(s) across %d program(s)"
            t.Fuzz_batch.bt_divergent count )
    else `Ok ()
  with Invalid_argument msg | Sys_error msg | Failure msg -> `Error (false, msg)

let fuzz_cmd =
  let doc = "Differentially fuzz the whole pipeline with random TIR programs." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates seeded, well-typed random TIR programs (nested loops, \
         predication-heavy control, aliasing loads/stores, recursion, mixed \
         int/float arithmetic with division/shift edge operands) and runs \
         each through every selected compilation preset with verification \
         and translation validation on, cross-checking: strict lint \
         cleanliness, the static timing lower bound against simulated \
         cycles, and the EDGE executor, cycle simulator, lowered-CFG \
         interpreter and RISC backend against the AST interpreter. \
         Divergences auto-shrink to minimal repros.";
      `P
        "The run is deterministic for a fixed $(b,--seed) regardless of \
         $(b,--jobs): reports are byte-identical. Set TRIPS_FUZZ_FULL=1 to \
         raise the default program count to 5000.";
    ]
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Base generator seed (programs use seed, seed+1, ...).")
  in
  let count =
    Arg.(
      value
      & opt (some int) None
      & info [ "count" ] ~docv:"N"
          ~doc:"Programs to generate (default 100; 5000 under TRIPS_FUZZ_FULL=1).")
  in
  let presets =
    Arg.(
      value
      & opt_all string []
      & info [ "preset" ] ~docv:"O0|C|H|BB"
          ~doc:"Code-quality preset (repeatable; default all four).")
  in
  let max_stmts =
    Arg.(
      value & opt int Fuzz_gen.default_cfg.Fuzz_gen.max_stmts
      & info [ "max-stmts" ] ~docv:"N" ~doc:"Statement budget per function.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker domains for the engine.")
  in
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"geni-bump|imm-bump|absint-N"
          ~doc:
            "Inject a compiler bug into every compiled program (the PR 6 \
             mutation style); the oracle must catch and shrink it.")
  in
  let shrink_evals =
    Arg.(
      value & opt int 2000
      & info [ "shrink-evals" ] ~docv:"N"
          ~doc:"Oracle evaluation budget per shrink.")
  in
  let format =
    Arg.(
      value & opt string "txt"
      & info [ "format" ] ~docv:"txt|json" ~doc:"Report rendering.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also write the JSON report to $(docv).")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Save every shrunk divergence as a corpus entry under $(docv).")
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc ~man)
    Term.(
      ret
        (const fuzz_main $ seed $ count $ presets $ max_stmts $ jobs $ inject
       $ shrink_evals $ format $ out $ corpus))

(* -- default: the parallel experiment engine -------------------------- *)

module Engine = Trips_engine.Engine
module Artifacts = Trips_engine.Artifacts
module Result_cache = Trips_engine.Result_cache

let engine_main all ids jobs cache_dir out format =
  if (not all) && ids = [] then
    `Help (`Auto, None)
  else begin
    try
    let format =
      match Artifacts.format_of_string format with
      | Some f -> f
      | None -> invalid_arg ("unknown format " ^ format ^ " (ascii|json|csv)")
    in
    let experiments =
      if all then Experiments.all
      else
        List.map
          (fun id ->
            match Experiments.find_opt id with
            | Some e -> e
            | None -> invalid_arg ("unknown experiment id " ^ id))
          ids
    in
    let cache = Option.map Result_cache.open_ cache_dir in
    let report =
      Engine.run ~workers:jobs ?cache (List.map Experiments.to_job experiments)
    in
    (* tables to stdout in the requested format, in registry order *)
    List.iter2
      (fun (e : Experiments.experiment) (r : Engine.job_report) ->
        match r.Engine.outcome with
        | Engine.Finished table ->
          if format = Artifacts.Ascii then
            Printf.printf "=== %s: %s ===\n%s\n" e.Experiments.id
              e.Experiments.title
              (Artifacts.render format table)
          else print_string (Artifacts.render format table)
        | Engine.Failed { attempts; error } ->
          Printf.eprintf "%s: FAILED after %d attempt(s): %s\n"
            e.Experiments.id attempts error)
      experiments report.Engine.job_reports;
    (* run summary on stderr so json/csv stdout stays machine-readable *)
    Printf.eprintf
      "engine: %d job(s), %d worker(s), %.2fs wall, %d cache hit(s), %d miss(es), \
       %.0f%% worker utilization\n"
      (List.length report.Engine.job_reports)
      report.Engine.workers report.Engine.wall_s report.Engine.cache_hits
      report.Engine.cache_misses
      (100. *. Engine.utilization report);
    List.iter
      (fun (r : Engine.job_report) ->
        Printf.eprintf "  %-10s %7.2fs %s\n" r.Engine.job_id r.Engine.work_s
          (if r.Engine.cache_hit then "cached"
           else
             match r.Engine.outcome with
             | Engine.Finished _ -> "computed"
             | Engine.Failed _ -> "FAILED"))
      report.Engine.job_reports;
    (match out with
    | Some dir ->
      let manifest =
        Artifacts.write_run ~dir ~metas:(List.map Experiments.meta experiments)
          ~report
      in
      Printf.eprintf "artifacts: %s\n" manifest
    | None -> ());
    let failed =
      List.exists
        (fun (r : Engine.job_report) ->
          match r.Engine.outcome with Engine.Failed _ -> true | _ -> false)
        report.Engine.job_reports
    in
    if failed then `Error (false, "one or more experiments failed") else `Ok ()
    with
    | Invalid_argument msg | Sys_error msg -> `Error (false, msg)
    | Unix.Unix_error (e, fn, arg) ->
      `Error (false, Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))
  end

let default_term =
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Run every registered experiment.")
  in
  let ids =
    Arg.(
      value
      & opt_all string []
      & info [ "id" ] ~docv:"ID" ~doc:"Experiment id to run (repeatable).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker domains for the engine.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"On-disk result cache; hits skip recomputation.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Write per-experiment artifacts (txt/json/csv) and manifest.json.")
  in
  let format =
    Arg.(
      value & opt string "ascii"
      & info [ "format" ] ~docv:"ascii|json|csv" ~doc:"Stdout rendering.")
  in
  Term.(
    ret (const engine_main $ all $ ids $ jobs $ cache_dir $ out $ format))

let () =
  (* The emulator allocates short-lived tokens at a high rate; a larger
     minor heap keeps them out of the major heap and cuts GC overhead on
     long simulations. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let doc = "TRIPS/EDGE reproduction driver" in
  let info = Cmd.info "trips_run" ~doc in
  exit
    (Cmd.eval
       (Cmd.group ~default:default_term info
          [ list_cmd; run_cmd; exp_cmd; disasm_cmd; lint_cmd; absint_cmd;
            timing_cmd; sampling_cmd; transval_cmd; simbench_cmd; fuzz_cmd;
            serve_client_cmd ]))
